"""The repro.verify analyzer suite: seeded-bug detection + clean passes.

Each seeded-bug test injects exactly one protocol defect into a toy SPMD
program (or source snippet) and asserts the matching analysis flags exactly
that defect, with a diagnostic naming the offending rank/tag/call-site.
"""

import numpy as np
import pytest

from repro.machine import DeadlockError, GENERIC, SimTrace, Simulator
from repro.machine.simulator import MessageRecord
from repro.taskgraph import FACTOR, UPDATE
from repro.verify import (
    ProtocolViolationError,
    check_messages,
    check_run,
    check_spans_against_dag,
    host_orders,
    lint_parallel_modules,
    lint_source,
    parse_span_label,
    replay_check,
)
from repro.verify.pytest_support import trace_checked_simulations


def run_traced(nprocs, program, args=(), **kw):
    return Simulator(nprocs, GENERIC, program, args=args, trace=True, **kw).run()


# ---------------------------------------------------------------------------
# static comm-lint
# ---------------------------------------------------------------------------


class TestCommLint:
    def test_dropped_yield_on_recv(self):
        src = (
            "def prog(env):\n"
            "    env.recv(('x', 0))\n"
            "    yield env.barrier()\n"
        )
        findings = lint_source(src, path="toy.py")
        y01 = [f for f in findings if f.rule == "Y01"]
        assert len(y01) == 1
        assert y01[0].line == 2
        assert "recv" in y01[0].message and "yield" in y01[0].message

    def test_dropped_yield_on_barrier(self):
        src = (
            "def prog(env):\n"
            "    env.barrier()\n"
            "    v = yield env.recv(('x', 0))\n"
            "    env.send(1, ('x', 0), v)\n"
        )
        rules = {f.rule for f in lint_source(src)}
        assert "Y01" in rules

    def test_tag_missing_loop_discriminator(self):
        src = (
            "def prog(env, n):\n"
            "    for i in range(n):\n"
            "        env.send(1, ('x',), i)\n"
            "        v = yield env.recv(('x',))\n"
        )
        t03 = [f for f in lint_source(src, path="toy.py") if f.rule == "T03"]
        assert len(t03) == 2  # both the send and the recv reuse the tag
        assert t03[0].line == 3
        assert "'i'" in t03[0].message or "i" in t03[0].message

    def test_tag_derived_from_loop_target_accepted(self):
        src = (
            "def prog(env, tasks):\n"
            "    for task in tasks:\n"
            "        k = task[1]\n"
            "        env.send(1, ('col', k), k)\n"
            "        v = yield env.recv(('col', k))\n"
        )
        assert lint_source(src) == []

    def test_arity_mismatch_flagged(self):
        src = (
            "def prog(env, n):\n"
            "    for i in range(n):\n"
            "        env.send(1, ('a', i), i)\n"
            "        v = yield env.recv(('a', i, 0))\n"
        )
        t01 = [f for f in lint_source(src) if f.rule == "T01"]
        assert len(t01) == 1
        assert "'a'" in t01[0].message

    def test_one_sided_kind_flagged(self):
        src = (
            "def prog(env, n):\n"
            "    for i in range(n):\n"
            "        env.send(1, ('orphan', i), i)\n"
        )
        t02 = [f for f in lint_source(src) if f.rule == "T02"]
        assert len(t02) == 1
        assert "never" in t02[0].message and "'orphan'" in t02[0].message

    def test_suppression_marker(self):
        src = (
            "def prog(env, n):\n"
            "    for i in range(n):\n"
            "        env.send(1, ('x',), i)  # commlint: ok\n"
        )
        assert [f for f in lint_source(src) if f.rule == "T03"] == []

    def test_multicast_counts_as_send(self):
        src = (
            "def prog(env, n):\n"
            "    for i in range(n):\n"
            "        env.multicast([1, 2], ('m',), i)\n"
        )
        rules = {f.rule for f in lint_source(src)}
        assert "T03" in rules and "T02" in rules

    def test_repo_parallel_modules_are_clean(self):
        for path, findings in lint_parallel_modules().items():
            assert findings == [], f"{path}: {[str(f) for f in findings]}"


# ---------------------------------------------------------------------------
# dynamic trace checking
# ---------------------------------------------------------------------------


class TestTraceCheck:
    def test_clean_program_passes(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("t", 0), 1.5)
            else:
                v = yield env.recv(("t", 0))
                assert v == 1.5

        res = run_traced(2, prog)
        assert check_messages(res.trace, spec=GENERIC) == []

    def test_tag_collision_detected(self):
        def prog(env):
            if env.rank == 0:
                for i in range(2):  # same (dest, tag) twice: collision
                    env.send(1, ("t", 0), i)
            else:
                for _ in range(2):
                    yield env.recv(("t", 0))

        res = run_traced(2, prog)
        vs = check_messages(res.trace, spec=GENERIC)
        assert [v.rule for v in vs] == ["UNIQUE"]
        assert "dest=1" in vs[0].message and "('t', 0)" in vs[0].message

    def test_leaked_message_detected(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("lost", 7), 42)
            yield env.barrier()

        res = run_traced(2, prog)
        vs = check_messages(res.trace, spec=GENERIC)
        assert [v.rule for v in vs] == ["LEAK"]
        assert "('lost', 7)" in vs[0].message and "rank 0" in vs[0].message

    def test_dropped_yield_leaks_dynamically(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("t", 0), 42)
            else:
                env.recv(("t", 0))  # missing yield: a silent no-op
            yield env.barrier()

        res = run_traced(2, prog)
        vs = check_messages(res.trace, spec=GENERIC)
        assert [v.rule for v in vs] == ["LEAK"]

    def test_causality_violation_detected(self):
        # fabricate a record arriving before the latency/bandwidth floor
        trace = SimTrace(records=[MessageRecord(
            seq=1, src=0, dest=1, tag=("t", 0), send_clock=1.0,
            arrival=1.0, nbytes=8_000_000, recv_time=1.0, consumed=True,
        )])
        vs = check_messages(trace, spec=GENERIC)
        assert any(v.rule == "CAUSAL" for v in vs)

    def test_check_run_requires_trace(self):
        def prog(env):
            return None
            yield  # pragma: no cover

        res = Simulator(1, GENERIC, prog).run()
        report = check_run(res)
        assert not report.ok and report.violations[0].rule == "TRACE"


class TestDagConformance:
    def _graph(self):
        # F0 -> U0,1 -> F1  (rules 1 and 2)
        tasks = [(FACTOR, 0), (UPDATE, 0, 1), (FACTOR, 1)]
        succ = {(FACTOR, 0): [(UPDATE, 0, 1)], (UPDATE, 0, 1): [(FACTOR, 1)]}

        class TG:
            pass

        tg = TG()
        tg.tasks = tasks
        tg.succ = succ
        return tg

    def test_label_parser(self):
        assert parse_span_label("F3") == (FACTOR, 3)
        assert parse_span_label("U3,7") == (UPDATE, 3, 7)
        assert parse_span_label("swap") is None

    def test_conforming_spans_pass(self):
        from repro.machine import TaskSpan

        spans = [
            TaskSpan(0, "F0", 0.0, 1.0),
            TaskSpan(1, "U0,1", 0.5, 2.0),
            TaskSpan(1, "F1", 2.0, 3.0),
        ]
        vs, checked = check_spans_against_dag(spans, self._graph())
        assert vs == [] and checked == 2

    def test_order_violation_detected(self):
        from repro.machine import TaskSpan

        spans = [  # F1 completes before its dependence U0,1: rule 2 broken
            TaskSpan(0, "F0", 0.0, 1.0),
            TaskSpan(1, "F1", 0.0, 0.5),
            TaskSpan(1, "U0,1", 0.5, 2.0),
        ]
        vs, _ = check_spans_against_dag(spans, self._graph())
        assert len(vs) == 1 and vs[0].rule == "DAG"
        assert "('F', 1)" in vs[0].message

    def test_missing_task_detected(self):
        from repro.machine import TaskSpan

        spans = [TaskSpan(0, "F0", 0.0, 1.0), TaskSpan(1, "U0,1", 1.0, 2.0)]
        vs, _ = check_spans_against_dag(spans, self._graph())
        assert any("no executed span" in v.message for v in vs)

    def test_duplicate_task_detected(self):
        from repro.machine import TaskSpan

        spans = [
            TaskSpan(0, "F0", 0.0, 1.0),
            TaskSpan(1, "F0", 0.0, 1.0),
            TaskSpan(1, "U0,1", 1.0, 2.0),
            TaskSpan(1, "F1", 2.0, 3.0),
        ]
        vs, _ = check_spans_against_dag(spans, self._graph())
        assert any("twice" in v.message for v in vs)


class TestRetransmitAwareness:
    """UNIQUE must tell retransmissions (same logical message resent by the
    reliable transport) apart from genuine tag reuse (distinct messages)."""

    def _rec(self, seq, logical, consumed=True, **kw):
        fields = dict(
            seq=seq, src=0, dest=1, tag=("t", 0), send_clock=0.0,
            arrival=1.0, nbytes=8, consumed=consumed, logical=logical,
        )
        fields.update(kw)
        if consumed and "recv_time" not in kw:
            fields["recv_time"] = fields["arrival"]
        return MessageRecord(**fields)

    def test_retransmit_copies_are_not_a_collision(self):
        # two wire copies of one logical send: the first was dropped, the
        # retry got through — same (dest, tag) twice but NOT tag reuse
        trace = SimTrace(records=[
            self._rec(1, logical=1, consumed=False, dropped=True),
            self._rec(2, logical=1, attempt=1),
        ])
        assert check_messages(trace, spec=GENERIC) == []

    def test_genuine_tag_reuse_still_flagged(self):
        # distinct logical messages on the same (dest, tag): a real
        # collision that retransmission-awareness must not excuse
        trace = SimTrace(records=[
            self._rec(1, logical=1),
            self._rec(2, logical=2, send_clock=0.5, arrival=1.5),
        ])
        vs = check_messages(trace, spec=GENERIC)
        assert [v.rule for v in vs] == ["UNIQUE"]

    def test_legacy_traces_fall_back_to_seq(self):
        # records without a logical id (pre-fault-injection traces) keep
        # the old per-record semantics
        trace = SimTrace(records=[
            self._rec(1, logical=None),
            self._rec(2, logical=None, send_clock=0.5, arrival=1.5),
        ])
        vs = check_messages(trace, spec=GENERIC)
        assert [v.rule for v in vs] == ["UNIQUE"]

    def test_dropped_and_duplicate_copies_are_not_leaks(self):
        trace = SimTrace(records=[
            self._rec(1, logical=1, consumed=False, dropped=True),
            self._rec(2, logical=1, attempt=1),
            self._rec(3, logical=2, tag=("u", 0), send_clock=2.0,
                      arrival=3.0, recv_time=3.0),
            self._rec(4, logical=2, tag=("u", 0), consumed=False,
                      duplicate=True, send_clock=2.0, arrival=3.1),
        ])
        assert check_messages(trace, spec=GENERIC) == []

    def test_undelivered_to_crashed_rank_excused(self):
        rec = self._rec(1, logical=1, consumed=False)
        trace = SimTrace(records=[rec])
        assert [v.rule for v in check_messages(trace, spec=GENERIC)] == ["LEAK"]
        assert check_messages(trace, spec=GENERIC, crashed=(1,)) == []

    def test_real_faulty_run_passes_unique(self):
        from repro.machine import FaultPlan

        def prog(env):
            if env.rank == 0:
                for k in range(8):
                    env.send(1, ("col", k), float(k))
            else:
                for k in range(8):
                    v = yield env.recv(("col", k))
                    assert v == float(k)

        res = run_traced(2, prog, faults=FaultPlan.drops(0.3, seed=4),
                         reliable=True)
        assert res.fault_stats.retransmits >= 1
        assert check_messages(res.trace, spec=GENERIC) == []

    def test_crashed_run_trace_excuses_dead_rank(self):
        from repro.machine import FaultPlan, RankCrashedError

        def prog(env):
            if env.rank == 0:
                env.send(1, ("x", 0), 1.0)
                yield env.recv(("reply", 0))
            else:
                got = yield env.recv(("x", 0))
                env.send(0, ("reply", 0), got)

        with pytest.raises(RankCrashedError):
            Simulator(2, GENERIC, prog, trace=True,
                      faults=FaultPlan().with_crash(1, 0.0)).run()
        # the in-flight message to the dead rank is excused by `crashed`
        rec = self._rec(1, logical=1, consumed=False)
        assert check_messages(SimTrace(records=[rec]), spec=GENERIC,
                              crashed=(1,)) == []


# ---------------------------------------------------------------------------
# determinism replay
# ---------------------------------------------------------------------------


class TestReplay:
    def test_host_orders_distinct_permutations(self):
        orders = host_orders(4, 3)
        assert orders[0] == [0, 1, 2, 3]
        assert orders[1] == [3, 2, 1, 0]
        assert all(sorted(o) == [0, 1, 2, 3] for o in orders)

    def test_deterministic_program_passes(self):
        def make(sim_opts):
            def prog(env):
                env.compute("blas1", 1e5 * (env.rank + 1))
                env.send((env.rank + 1) % 3, ("r", env.rank), env.clock)
                v = yield env.recv(("r", (env.rank - 1) % 3))
                return v

            return Simulator(3, GENERIC, prog, **sim_opts).run()

        rep = replay_check(make, 3)
        assert rep.ok and rep.runs == 3

    def test_shared_state_race_detected(self):
        # ranks append to state shared across rank generators: the arrival
        # order of appends depends on the host scheduling order, which is
        # exactly the bug class the replay checker exists to catch
        def make(sim_opts):
            shared = []

            def prog(env, log):
                env.send((env.rank + 1) % 4, ("r", env.rank), env.rank)
                v = yield env.recv(("r", (env.rank - 1) % 4))
                log.append(env.rank)
                return (v, tuple(log))

            return Simulator(4, GENERIC, prog, args=(shared,), **sim_opts).run()

        rep = replay_check(make, 4)
        assert not rep.ok
        assert any("returns" in m for m in rep.mismatches)


# ---------------------------------------------------------------------------
# deadlock diagnostics + pytest support
# ---------------------------------------------------------------------------


class TestDeadlockDiagnostics:
    def test_reports_waiting_tag_and_mailbox(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("right", 0), 1.0)  # wrong tag: rank 1 waits on 'wrong'
            if env.rank == 1:
                yield env.recv(("wrong", 0))

        with pytest.raises(DeadlockError) as exc:
            Simulator(2, GENERIC, prog).run()
        err = exc.value
        assert "'wrong'" in str(err)
        assert "undelivered" in str(err) and "'right'" in str(err)
        assert (1, ("wrong", 0)) in err.blocked
        assert [t for t, _, _ in err.pending[1]] == [("right", 0)]

    def test_barrier_deadlock_reported(self):
        def prog(env):
            if env.rank == 0:
                yield env.barrier()
            else:
                yield env.recv(("missing", 0))

        with pytest.raises(DeadlockError) as exc:
            Simulator(2, GENERIC, prog).run()
        assert (0, "barrier") in exc.value.blocked

    def test_empty_mailbox_reported(self):
        def prog(env):
            yield env.recv(("never", env.rank))

        with pytest.raises(DeadlockError, match="mailbox is empty"):
            Simulator(1, GENERIC, prog).run()


class TestPytestSupport:
    def test_violating_run_raises_inside_context(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("leak", 0), 1)
            yield env.barrier()

        with trace_checked_simulations():
            with pytest.raises(ProtocolViolationError, match="leak"):
                Simulator(2, GENERIC, prog).run()
        # patch is reverted: the same program runs unchecked afterwards
        Simulator(2, GENERIC, prog).run()

    def test_clean_run_unaffected(self):
        def prog(env):
            if env.rank == 0:
                env.send(1, ("t", 0), 5)
            else:
                v = yield env.recv(("t", 0))
                assert v == 5
            return env.clock

        with trace_checked_simulations():
            res = Simulator(2, GENERIC, prog).run()
        assert res.messages == 1


# ---------------------------------------------------------------------------
# end-to-end over the real codes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pipeline():
    from repro.matrices import random_nonsymmetric
    from repro.ordering import prepare_matrix
    from repro.supernodes import build_block_structure, build_partition
    from repro.symbolic import static_symbolic_factorization
    from repro.taskgraph import build_task_graph

    A = random_nonsymmetric(60, density=0.08, seed=7)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=5, amalgamation=3)
    bstruct = build_block_structure(sym, part)
    return om, part, bstruct, build_task_graph(bstruct)


class TestRealCodesVerifyClean:
    @pytest.mark.parametrize("method", ["rapid", "ca"])
    def test_1d_trace_and_dag_clean(self, pipeline, method):
        from repro.machine import T3E
        from repro.parallel import run_1d

        om, part, bstruct, tg = pipeline
        res = run_1d(om.A, part, bstruct, 3, T3E, method=method, tg=tg,
                     sim_opts={"trace": True})
        report = check_run(res.sim, spec=T3E, tg=tg, schedule=res.schedule)
        assert report.ok, [str(v) for v in report.violations]
        assert report.stats["dag_edges"] > 0

    @pytest.mark.parametrize("synchronous", [False, True])
    def test_2d_trace_clean(self, pipeline, synchronous):
        from repro.machine import T3E
        from repro.parallel import run_2d

        om, part, bstruct, _ = pipeline
        res = run_2d(om.A, part, bstruct, 4, T3E, synchronous=synchronous,
                     sim_opts={"trace": True})
        report = check_run(res.sim, spec=T3E)
        assert report.ok, [str(v) for v in report.violations]

    def test_1d_replay_deterministic(self, pipeline):
        from repro.machine import T3E
        from repro.parallel import run_1d

        om, part, bstruct, tg = pipeline
        rep = replay_check(
            lambda so: run_1d(om.A, part, bstruct, 3, T3E, method="ca",
                              tg=tg, sim_opts=so),
            3, n_orders=3,
        )
        assert rep.ok, rep.mismatches

    def test_trisolve_trace_clean(self, pipeline):
        from repro.machine import T3E
        from repro.numfact import LUFactorization
        from repro.parallel import run_1d, run_1d_trisolve

        om, part, bstruct, tg = pipeline
        res = run_1d(om.A, part, bstruct, 3, T3E, method="rapid", tg=tg)
        lu = LUFactorization(res.factor, None, part, bstruct, None)
        b = np.arange(float(om.A.nrows))
        tri = run_1d_trisolve(lu, res.schedule.owner, b, 3, T3E,
                              sim_opts={"trace": True})
        report = check_run(tri.sim, spec=T3E)
        assert report.ok, [str(v) for v in report.violations]
