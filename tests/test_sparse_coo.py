"""COO assembly and canonicalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import coo_to_csr, csr_to_coo, csr_to_dense


class TestAssembly:
    def test_sorted_and_unique(self):
        A = coo_to_csr(2, 3, [1, 0, 0], [0, 2, 1], [5.0, 1.0, 2.0])
        assert A.row_indices(0).tolist() == [1, 2]
        assert A.row_indices(1).tolist() == [0]

    def test_duplicates_summed(self):
        A = coo_to_csr(2, 2, [0, 0, 0], [1, 1, 1], [1.0, 2.0, 4.0])
        assert A.get(0, 1) == 7.0
        assert A.nnz == 1

    def test_duplicates_last_wins(self):
        A = coo_to_csr(2, 2, [0, 0], [1, 1], [1.0, 9.0], sum_duplicates=False)
        assert A.get(0, 1) == 9.0

    def test_empty(self):
        A = coo_to_csr(3, 3, [], [], [])
        assert A.nnz == 0
        assert csr_to_dense(A).sum() == 0.0

    def test_default_values(self):
        A = coo_to_csr(2, 2, [0, 1], [1, 0])
        assert A.get(0, 1) == 1.0


class TestErrors:
    def test_row_out_of_range(self):
        with pytest.raises(ValueError, match="row index"):
            coo_to_csr(2, 2, [2], [0], [1.0])

    def test_col_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            coo_to_csr(2, 2, [0], [5], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            coo_to_csr(2, 2, [0, 1], [0], [1.0])


class TestRoundtrip:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7), st.integers(0, 7),
                st.floats(-10, 10, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_coo_csr_coo(self, triplets):
        rows = [t[0] for t in triplets]
        cols = [t[1] for t in triplets]
        vals = [t[2] for t in triplets]
        A = coo_to_csr(8, 8, rows, cols, vals)
        # reference: dense accumulation
        D = np.zeros((8, 8))
        for r, c, v in triplets:
            D[r, c] += v
        r2, c2, v2 = csr_to_coo(A)
        D2 = np.zeros((8, 8))
        D2[r2, c2] = v2
        assert np.allclose(D2, D)
