"""Matrix generators: determinism, shape/density regimes, suite registry."""

import numpy as np
import pytest

from repro.matrices import (
    SUITE,
    block_structured,
    circuit_like,
    dense_matrix,
    fem_unstructured,
    get_matrix,
    random_nonsymmetric,
    stencil_2d,
    stencil_3d,
    suite_names,
)
from repro.ordering import is_structurally_nonsingular
from repro.sparse import csr_to_dense, structural_symmetry


class TestDeterminism:
    @pytest.mark.parametrize(
        "gen",
        [
            lambda: stencil_2d(6, 5, seed=9),
            lambda: stencil_3d(3, 3, 3, ndof=2, seed=9),
            lambda: fem_unstructured(60, seed=9),
            lambda: circuit_like(50, seed=9),
            lambda: block_structured(60, block=12, seed=9),
            lambda: dense_matrix(20, seed=9),
            lambda: random_nonsymmetric(40, seed=9),
        ],
    )
    def test_same_seed_same_matrix(self, gen):
        A, B = gen(), gen()
        assert np.array_equal(csr_to_dense(A), csr_to_dense(B))


class TestStencils:
    def test_stencil_2d_order(self):
        A = stencil_2d(7, 4)
        assert A.shape == (28, 28)

    def test_stencil_2d_is_five_point(self):
        A = stencil_2d(5, 5, pattern_nonsym=0.0)
        # interior node has 5 entries
        counts = np.diff(A.indptr)
        assert counts.max() == 5
        assert counts.min() == 3  # corners

    def test_stencil_2d_pattern_nonsymmetry(self):
        from repro.sparse import structural_symmetry

        A = stencil_2d(12, 12, pattern_nonsym=0.5, seed=4)
        assert structural_symmetry(A) > 1.1

    def test_stencil_3d_ndof(self):
        A = stencil_3d(2, 2, 2, ndof=3)
        assert A.shape == (24, 24)

    def test_stencil_3d_pattern_symmetric_values_not(self):
        A = stencil_3d(3, 3, 2, ndof=1, seed=5)
        D = csr_to_dense(A)
        assert np.array_equal(D != 0, (D != 0).T)
        assert not np.array_equal(D, D.T)


class TestFamilies:
    def test_fem_nonsymmetric_pattern(self):
        A = fem_unstructured(120, nonsym=0.5, seed=3)
        assert structural_symmetry(A) > 1.05

    def test_fem_nearly_symmetric_when_nonsym_zero(self):
        A = fem_unstructured(120, nonsym=0.0, seed=3)
        assert structural_symmetry(A) < 1.1

    def test_circuit_has_rail_rows(self):
        A = circuit_like(300, seed=2)
        counts = np.diff(A.indptr)
        assert counts.max() >= 15  # the supply-rail rows

    def test_dense_is_dense(self):
        A = dense_matrix(15)
        assert A.nnz == 225

    def test_random_zero_free_diagonal(self):
        A = random_nonsymmetric(30, seed=8)
        assert A.has_zero_free_diagonal()


class TestSuite:
    def test_all_names_resolve(self):
        for name in suite_names():
            A = get_matrix(name, "small")
            assert A.nrows > 50

    def test_paper_metadata_present(self):
        for spec in SUITE.values():
            assert spec.paper_order > 0
            assert spec.paper_nnz > 0
            assert spec.paper_symmetry >= 1.0

    def test_structurally_nonsingular(self):
        for name in ["sherman5", "jpwh991", "goodwin", "vavasis3"]:
            assert is_structurally_nonsingular(get_matrix(name, "small")), name

    def test_bench_scale_larger(self):
        a = get_matrix("orsreg1", "small")
        b = get_matrix("orsreg1", "bench")
        assert b.nrows > a.nrows

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            SUITE["orsreg1"].generate("huge")

    def test_symmetry_regimes_match_paper_classes(self):
        # matrices the paper lists as structurally symmetric stay near 1
        assert structural_symmetry(get_matrix("orsreg1", "small")) == 1.0
        # goodwin-class is visibly nonsymmetric
        assert structural_symmetry(get_matrix("goodwin", "small")) > 1.15
