"""Pattern algebra: transpose, AᵀA, A+Aᵀ, symmetry, matvec."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.matrices import random_nonsymmetric
from repro.sparse import (
    ata_pattern,
    aplusat_pattern,
    csr_matvec,
    csr_to_dense,
    csr_transpose,
    dense_to_csr,
    pattern_transpose,
    structural_symmetry,
)


def _rand(n, density, seed):
    return random_nonsymmetric(n, density=density, seed=seed)


class TestTranspose:
    def test_numeric_transpose(self):
        A = _rand(12, 0.2, 1)
        assert np.array_equal(csr_to_dense(csr_transpose(A)), csr_to_dense(A).T)

    def test_pattern_transpose_values_are_one(self):
        A = _rand(12, 0.2, 2)
        P = pattern_transpose(A)
        assert set(P.data.tolist()) <= {1.0}
        assert np.array_equal(csr_to_dense(P) != 0, csr_to_dense(A).T != 0)

    def test_double_transpose_identity(self):
        A = _rand(9, 0.3, 3)
        assert np.array_equal(
            csr_to_dense(csr_transpose(csr_transpose(A))), csr_to_dense(A)
        )


class TestAtaPattern:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_matches_dense(self, seed):
        A = _rand(10, 0.15, seed)
        D = csr_to_dense(A) != 0
        ref = (D.T.astype(int) @ D.astype(int)) > 0
        got = csr_to_dense(ata_pattern(A)) != 0
        assert np.array_equal(got, ref)

    def test_symmetric(self):
        A = _rand(15, 0.2, 7)
        P = csr_to_dense(ata_pattern(A)) != 0
        assert np.array_equal(P, P.T)


class TestAplusAt:
    def test_matches_dense(self):
        A = _rand(12, 0.2, 5)
        D = csr_to_dense(A) != 0
        got = csr_to_dense(aplusat_pattern(A)) != 0
        assert np.array_equal(got, D | D.T)


class TestSymmetry:
    def test_symmetric_matrix_is_one(self):
        D = np.array([[1.0, 2.0, 0], [3.0, 1.0, 0], [0, 0, 1.0]])
        assert structural_symmetry(dense_to_csr(D)) == 1.0

    def test_asymmetric_increases(self):
        D = np.array([[1.0, 2.0], [0.0, 1.0]])
        assert structural_symmetry(dense_to_csr(D)) > 1.0

    def test_bounds(self):
        A = _rand(20, 0.1, 11)
        s = structural_symmetry(A)
        assert 1.0 <= s <= 2.0


class TestMatvec:
    def test_matches_dense(self, rng):
        A = _rand(17, 0.25, 13)
        x = rng.uniform(-1, 1, 17)
        assert np.allclose(csr_matvec(A, x), csr_to_dense(A) @ x)

    def test_empty_rows(self):
        A = dense_to_csr(np.zeros((3, 3)))
        assert np.array_equal(csr_matvec(A, np.ones(3)), np.zeros(3))
