"""Integration: the full pipeline over every suite matrix (small scale)."""

import numpy as np
import pytest

from repro import SStarSolver
from repro.matrices import suite_names, get_matrix
from repro.numfact import sstar_factor
from repro.ordering import prepare_matrix
from repro.sparse import csr_matvec
from repro.symbolic import static_symbolic_factorization


@pytest.mark.parametrize("name", suite_names())
def test_factor_and_solve(name):
    A = get_matrix(name, "small")
    s = SStarSolver().factor(A)
    rng = np.random.default_rng(7)
    b = rng.uniform(-1, 1, A.nrows)
    x = s.solve(b)
    r = np.linalg.norm(csr_matvec(A, x) - b) / np.linalg.norm(b)
    assert r < 1e-8, f"{name}: residual {r}"


@pytest.mark.parametrize("name", ["sherman5", "goodwin", "orsreg1"])
def test_static_zero_invariant_on_suite(name):
    A = get_matrix(name, "small")
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    lu = sstar_factor(om.A, sym=sym)
    assert lu.matrix.check_static_zeros(sym) == 0


@pytest.mark.parametrize("name", ["sherman5", "lnsp3937", "goodwin"])
def test_parallel_agreement_on_suite(name):
    A = get_matrix(name, "small")
    ref = SStarSolver().factor(A)
    par2d = SStarSolver(nprocs=8, method="2d").factor(A)
    par1d = SStarSolver(nprocs=8, method="1d-rapid").factor(A)
    b = np.ones(A.nrows)
    xr = ref.solve(b)
    assert np.array_equal(xr, par2d.solve(b))
    assert np.array_equal(xr, par1d.solve(b))


def test_dgemm_fraction_exceeds_paper_threshold():
    """The paper reports >64% of update flops through DGEMM; our suite
    average should comfortably clear 50%."""
    fracs = []
    for name in ["sherman5", "orsreg1", "goodwin", "vavasis3", "dense1000"]:
        s = SStarSolver().factor(get_matrix(name, "small"))
        fracs.append(s.report.dgemm_fraction)
    assert sum(fracs) / len(fracs) > 0.5
