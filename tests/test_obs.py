"""repro.obs: tracing, metrics, exporters and critical-path profiling.

Acceptance-criteria coverage for ISSUE 7: span emission is deterministic
across permuted host orders (the PR-1 replay promise extends to traces);
the Chrome/Perfetto export round-trips through ``from_chrome_trace`` and
passes schema validation; the critical path recovered from the span +
message graph matches the simulator's total virtual time to 1e-9 on both
the 1D and 2D codes and reconciles against the task-graph model; the
metrics registry mirrors simulator/service/cache accounting; and the
``repro trace`` / ``repro profile`` CLI verbs run end to end.
"""

import json

import numpy as np
import pytest

from repro.api import SStarSolver
from repro.machine import GENERIC, Simulator
from repro.obs import (
    BARRIER_WAIT,
    COMPUTE,
    PHASE,
    PIPELINE_PHASES,
    RECV_WAIT,
    SEND,
    TASK,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    analyze_phase_spans,
    as_tracer,
    from_chrome_trace,
    profile_trace,
    reconcile,
    render_summary,
    tag_label,
    to_chrome_trace,
    validate_trace,
)
from repro.parallel import run_1d, run_2d
from repro.scheduling import gantt_from_trace
from repro.sparse import csr_matvec
from repro.taskgraph import build_task_graph
from repro.verify.replay import host_orders


MATRIX = "sherman5"


@pytest.fixture(scope="module")
def ctx(contexts):
    return contexts(MATRIX)


def traced_1d(p, host_order=None):
    tr = Tracer()
    opts = {"tracer": tr}
    if host_order is not None:
        opts["host_order"] = host_order
    res = run_1d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                 method="ca", sim_opts=opts)
    return res, tr


def traced_2d(p, host_order=None):
    tr = Tracer()
    opts = {"tracer": tr}
    if host_order is not None:
        opts["host_order"] = host_order
    res = run_2d(p["om"].A, p["part"], p["bstruct"], 4, GENERIC,
                 sim_opts=opts)
    return res, tr


class TestMetrics:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_track_max(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
        m = Gauge("peak")
        m.track_max(2)
        m.track_max(5)
        m.track_max(4)
        assert m.value == 5

    def test_histogram_percentiles_exact(self):
        h = Histogram("lat")
        vals = [0.5, 1.5, 2.5, 3.5, 4.5]
        for v in vals:
            h.observe(v)
        # nearest-rank percentiles over retained samples
        assert h.percentile(0.50) == 2.5
        assert h.percentile(0.95) == 4.5
        assert h.count == 5
        assert h.mean == pytest.approx(2.5)
        d = h.as_dict()
        assert d["count"] == 5 and "buckets" in d

    def test_histogram_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0))

    def test_registry_get_or_create_and_as_dict(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        r.counter("b.z").inc(2)
        r.gauge("b.g").set(7)
        r.histogram("h").observe(1.0)
        assert r.value("b.z") == 2
        d = r.as_dict()
        assert list(d["counters"]) == sorted(d["counters"])
        assert d["gauges"]["b.g"] == 7
        with pytest.raises(TypeError):
            r.gauge("b.z")  # name already registered as a counter


class TestTracer:
    def test_span_and_track_end(self):
        tr = Tracer()
        tr.span(0, "k", COMPUTE, 0.0, 1.0)
        tr.span("pipeline/main", "ordering", PHASE, 0.0, 2.0)
        assert tr.track_end(0) == 1.0
        assert tr.track_end("pipeline/main") == 2.0
        assert tr.track_end("missing") == 0.0

    def test_offset_proxy_shifts_and_shares(self):
        tr = Tracer()
        off = tr.offset(10.0)
        off.span(0, "k", COMPUTE, 0.0, 1.0)
        off.message(0, 1, ("t",), 0.5, 0.8, 64)
        assert tr.spans[-1].start == 10.0 and tr.spans[-1].end == 11.0
        assert tr.messages[-1].t_send == 10.5
        off.metrics.counter("x").inc()
        assert tr.metrics.value("x") == 1
        # nested offsets compose
        off2 = off.offset(5.0)
        off2.span(0, "k2", COMPUTE, 0.0, 1.0)
        assert tr.spans[-1].start == 15.0

    def test_as_tracer(self):
        tr = Tracer()
        assert as_tracer(None) is None
        assert as_tracer(False) is None
        assert as_tracer(tr) is tr
        assert isinstance(as_tracer(True), Tracer)

    def test_tag_label(self):
        assert tag_label(("col", 3, 1)) == "col:3:1"
        assert tag_label("done") == "done"


class TestSimulatorSpans:
    def test_spans_tile_each_rank_timeline(self, ctx):
        res, tr = traced_1d(ctx)
        total = res.sim.total_time
        for r in range(4):
            spans = sorted(
                (s for s in tr.spans
                 if s.track == r and s.cat != TASK),
                key=lambda s: (s.start, s.end),
            )
            assert spans, f"rank {r} emitted no spans"
            cursor = 0.0
            for s in spans:
                assert s.start == pytest.approx(cursor, abs=1e-12)
                cursor = s.end
            assert cursor == pytest.approx(res.sim.rank_clocks[r], abs=1e-12)
        assert total == max(res.sim.rank_clocks)

    def test_trace_deterministic_across_host_orders(self, ctx):
        runs = [traced_1d(ctx, order) for order in host_orders(4, 3)]
        base_spans = [s.key() for s in runs[0][1].spans]
        base_msgs = sorted(m.key() for m in runs[0][1].messages)
        for res, tr in runs[1:]:
            assert sorted(s.key() for s in tr.spans) == sorted(base_spans)
            assert sorted(m.key() for m in tr.messages) == base_msgs
            assert res.sim.total_time == runs[0][0].sim.total_time

    def test_message_records_match_sim_counts(self, ctx):
        res, tr = traced_2d(ctx)
        assert len(tr.messages) == res.sim.messages
        assert sum(m.nbytes for m in tr.messages) == res.sim.bytes_sent
        assert tr.metrics.value("sim.messages") == res.sim.messages
        assert tr.metrics.value("sim.bytes") == res.sim.bytes_sent

    def test_barrier_wait_spans(self):
        def prog(env):
            if env.rank == 0:
                env.compute("dgemm", 1e6)
            yield env.barrier()

        tr = Tracer()
        Simulator(2, GENERIC, prog, tracer=tr).run()
        waits = [s for s in tr.spans if s.cat == BARRIER_WAIT]
        assert any(s.track == 1 for s in waits)  # rank 1 waited for rank 0


class TestChromeExport:
    def test_round_trip_and_schema(self, ctx):
        res, tr = traced_2d(ctx)
        doc = to_chrome_trace(tr)
        assert validate_trace(doc) == []
        spans, messages = from_chrome_trace(doc)
        # timestamps round-trip through microseconds at float precision
        got = sorted(s.key() for s in spans)
        want = sorted(s.key() for s in tr.spans)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g[:3] == w[:3]
            assert g[3] == pytest.approx(w[3], rel=1e-12, abs=1e-15)
            assert g[4] == pytest.approx(w[4], rel=1e-12, abs=1e-15)
        assert len(messages) == len(tr.messages)
        assert sorted((m.src, m.dest) for m in messages) == \
            sorted((m.src, m.dest) for m in tr.messages)

    def test_flow_events_pair_per_message(self, ctx):
        res, tr = traced_2d(ctx)
        doc = to_chrome_trace(tr)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == len(tr.messages) > 0
        assert all(e["bp"] == "e" for e in finishes)

    def test_validator_catches_problems(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "name": "a",
             "cat": "compute"},  # missing dur
            {"ph": "q", "pid": 0, "tid": 0, "ts": 0.0, "name": "b"},
        ]}
        problems = validate_trace(doc)
        assert problems

    def test_summary_mentions_every_rank(self, ctx):
        res, tr = traced_1d(ctx)
        text = render_summary(tr)
        for r in range(4):
            assert f"rank {r}" in text
        assert "sim.messages" in text


class TestProfile:
    @pytest.mark.parametrize("runner", [traced_1d, traced_2d])
    def test_critical_path_matches_total_time(self, ctx, runner):
        res, tr = runner(ctx)
        prof = profile_trace(tr, total_time=res.sim.total_time)
        assert abs(prof.critical_path_seconds - res.sim.total_time) <= 1e-9
        for rb in prof.ranks:
            parts = rb.pct(rb.busy) + rb.pct(rb.comm) + rb.pct(rb.idle)
            assert parts == pytest.approx(100.0, abs=1e-6)
        assert 0.0 <= prof.overlap_ratio <= 1.0
        assert prof.top_spans(3)
        assert "critical path" in prof.render()

    def test_reconciles_against_model(self, ctx):
        res, tr = traced_1d(ctx)
        prof = profile_trace(tr, total_time=res.sim.total_time)
        tg = build_task_graph(ctx["bstruct"])
        rec = reconcile(prof, tg, GENERIC)
        assert rec["model_critical_path_seconds"] > 0
        assert np.isfinite(rec["drift"])
        # the simulated run can't beat the model's critical path by much
        assert rec["observed_critical_path_seconds"] >= \
            0.5 * rec["model_critical_path_seconds"]


class TestPipelinePhases:
    @pytest.mark.parametrize("method", ["sequential", "1d-ca", "2d"])
    def test_all_phases_in_order(self, ctx, method):
        solver = SStarSolver(nprocs=4, method=method, trace=True)
        solver.factor(ctx["A"])
        x = solver.solve(np.ones(ctx["A"].nrows))
        assert np.isfinite(x).all()
        tr = solver.tracer
        phases = [s for s in tr.spans
                  if s.track == "pipeline/main" and s.cat == PHASE]
        assert [s.name for s in phases] == list(PIPELINE_PHASES)
        for a, b in zip(phases, phases[1:]):
            assert b.start >= a.end - 1e-15  # contiguous, non-overlapping

    def test_analysis_reuse_emits_instant(self, ctx):
        solver = SStarSolver(method="sequential", trace=True)
        solver.factor(ctx["A"])
        solver.refactor(ctx["A"])  # same pattern: analysis reused
        marks = [s for s in solver.tracer.spans if s.name == "analysis reused"]
        assert marks

    def test_analyze_phase_spans_standalone(self):
        tr = Tracer()
        analyze_phase_spans(tr, nnz=100, n=10, factor_entries=200)
        names = [s.name for s in tr.spans]
        assert names == ["transversal", "ordering", "symbolic", "partition"]
        assert tr.spans[0].start == 0.0
        assert all(b.start == a.end
                   for a, b in zip(tr.spans, tr.spans[1:]))


class TestGanttFromTrace:
    def test_task_spans_render(self, ctx):
        res, tr = traced_1d(ctx)
        chart = gantt_from_trace(tr, total_time=res.sim.total_time)
        assert chart.nprocs == 4
        assert chart.makespan == res.sim.total_time
        names = {t for _, t, _, _ in chart.intervals}
        assert any(n.startswith("F") for n in names)
        out = chart.render()
        assert out.count("\n") >= 4  # one row per rank + makespan


class TestServiceObservability:
    def test_job_spans_and_metrics(self, ctx):
        from repro.service import SolveService

        A = ctx["A"]
        tr = Tracer()
        svc = SolveService(workers=2, max_queue=16, tracer=tr)
        rng = np.random.default_rng(7)
        # same pattern, distinct values: no value-batching, so jobs after
        # the first exercise the analysis cache
        work = [
            A.with_values(A.data * (1.0 + 0.05 * rng.uniform(-1, 1, A.nnz)))
            for _ in range(3)
        ]
        ids = [svc.submit(Ai, np.ones(A.nrows)) for Ai in work]
        svc.drain()
        for jid, Ai in zip(ids, work):
            x = svc.result(jid)
            assert np.linalg.norm(
                csr_matvec(Ai, x) - np.ones(A.nrows)) < 1e-6
        jobs = [s for s in tr.spans if s.name == "solve"]
        assert len(jobs) == 3
        assert all(s.args["status"] == "done" for s in jobs)
        # same-pattern jobs after the first hit the analysis cache
        assert tr.metrics.value("cache.hits") >= 1
        assert tr.metrics.value("service.jobs.submitted") == 3
        snap = svc.metrics()
        assert snap.jobs_submitted == 3
        assert snap.latency_p50 > 0
        assert snap.cache_hits == tr.metrics.value("cache.hits")

    def test_shared_registry_without_tracer(self, ctx):
        from repro.service import SolveService

        reg = MetricsRegistry()
        svc = SolveService(workers=1, max_queue=4, metrics=reg)
        svc.submit(ctx["A"], np.ones(ctx["A"].nrows))
        svc.drain()
        assert reg.value("service.jobs.submitted") == 1


class TestCLI:
    def test_trace_and_profile_verbs(self, tmp_path, capsys):
        from repro.cli import main
        from repro.matrices import get_matrix
        from repro.sparse import write_matrix_market

        mtx = tmp_path / "m.mtx"
        write_matrix_market(str(mtx), get_matrix(MATRIX, "small"))
        out = tmp_path / "trace.json"
        rc = main(["trace", str(mtx), "--mode", "2d", "--nprocs", "4",
                   "--out", str(out), "--check"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        assert capsys.readouterr().out.count("schema: OK") == 1

        rc = main(["profile", str(mtx), "--mode", "1d", "--nprocs", "4"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "|diff| = 0.000e+00" in text
        assert "busy" in text

        rc = main(["profile", "--trace", str(out)])
        assert rc == 0
        assert "critical path" in capsys.readouterr().out

    def test_profile_needs_input(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 2


class TestZeroOverheadDisabled:
    def test_no_tracer_attribute_cost(self, ctx):
        # tracing off: simulator carries tracer=None and emits nothing
        res = run_1d(ctx["om"].A, ctx["part"], ctx["bstruct"], 4, GENERIC,
                     method="ca")
        assert res.sim.total_time > 0
        solver = SStarSolver(method="sequential")
        assert solver.tracer is None
