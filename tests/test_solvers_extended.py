"""Extended solver features: transpose solve, multi-RHS, condition
estimation, serialization, shared-memory threads."""

import numpy as np
import pytest

from repro.analysis import condest, onenorm, onenormest_inverse
from repro.matrices import random_nonsymmetric
from repro.numfact import (
    load_factorization,
    save_factorization,
    sstar_factor,
)
from repro.ordering import prepare_matrix
from repro.parallel import sstar_factor_threads
from repro.sparse import csr_to_dense, dense_to_csr


@pytest.fixture(scope="module")
def lu_and_dense():
    A = random_nonsymmetric(80, density=0.08, seed=91)
    om = prepare_matrix(A)
    return sstar_factor(om.A), csr_to_dense(om.A), om


class TestTransposeSolve:
    def test_residual(self, lu_and_dense):
        lu, D, om = lu_and_dense
        b = np.cos(np.arange(80.0))
        x = lu.solve_transpose(b)
        assert np.linalg.norm(D.T @ x - b) / np.linalg.norm(b) < 1e-10

    def test_matches_numpy(self, lu_and_dense):
        lu, D, om = lu_and_dense
        b = np.ones(80)
        assert np.allclose(
            lu.solve_transpose(b), np.linalg.solve(D.T, b), rtol=1e-7, atol=1e-9
        )

    def test_roundtrip_identity(self, lu_and_dense):
        """solve(A, solve_transpose(A^T, b)) style consistency: applying A
        then solving must return the input."""
        lu, D, om = lu_and_dense
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, 80)
        assert np.allclose(lu.solve(D @ x), x, rtol=1e-7, atol=1e-9)
        assert np.allclose(lu.solve_transpose(D.T @ x), x, rtol=1e-7, atol=1e-9)

    def test_shape_validation(self, lu_and_dense):
        lu, _, _ = lu_and_dense
        with pytest.raises(ValueError, match="rhs"):
            lu.solve_transpose(np.ones(5))


class TestMultiRHS:
    def test_block_solve(self, lu_and_dense):
        lu, D, om = lu_and_dense
        rng = np.random.default_rng(7)
        B = rng.uniform(-1, 1, (80, 4))
        X = lu.solve(B)
        assert np.linalg.norm(D @ X - B) < 1e-9

    def test_columns_match_vector_solves(self, lu_and_dense):
        lu, D, om = lu_and_dense
        rng = np.random.default_rng(8)
        B = rng.uniform(-1, 1, (80, 3))
        X = lu.solve(B)
        for j in range(3):
            # GEMM vs GEMV host-BLAS paths may round differently; the
            # solutions agree to machine precision but not bitwise
            assert np.allclose(X[:, j], lu.solve(B[:, j]), rtol=1e-12, atol=1e-14)

    def test_transpose_block_solve(self, lu_and_dense):
        lu, D, om = lu_and_dense
        rng = np.random.default_rng(9)
        B = rng.uniform(-1, 1, (80, 2))
        X = lu.solve_transpose(B)
        assert np.linalg.norm(D.T @ X - B) < 1e-9


class TestConditionEstimate:
    def test_onenorm_exact(self):
        D = np.array([[1.0, -2.0], [3.0, 0.5]])
        assert onenorm(dense_to_csr(D)) == pytest.approx(4.0)

    def test_estimate_within_factor_of_truth(self, lu_and_dense):
        lu, D, om = lu_and_dense
        est = condest(om.A, lu.solve, lu.solve_transpose)
        true = np.linalg.norm(D, 1) * np.linalg.norm(np.linalg.inv(D), 1)
        assert true / 20 <= est <= true * 1.01

    def test_identity_matrix(self):
        A = dense_to_csr(np.eye(10))
        om = prepare_matrix(A)
        lu = sstar_factor(om.A)
        est = condest(om.A, lu.solve, lu.solve_transpose)
        assert est == pytest.approx(1.0, rel=0.1)

    def test_lower_bound_property(self, lu_and_dense):
        lu, D, om = lu_and_dense
        est = onenormest_inverse(lu.solve, lu.solve_transpose, 80)
        assert est <= np.linalg.norm(np.linalg.inv(D), 1) * 1.001


class TestSerialization:
    def test_roundtrip_solution(self, lu_and_dense, tmp_path):
        lu, D, om = lu_and_dense
        p = tmp_path / "f.npz"
        save_factorization(p, lu)
        lu2 = load_factorization(p)
        b = np.arange(80.0)
        assert np.array_equal(lu.solve(b), lu2.solve(b))

    def test_roundtrip_structure(self, lu_and_dense, tmp_path):
        lu, D, om = lu_and_dense
        p = tmp_path / "f.npz"
        save_factorization(p, lu)
        lu2 = load_factorization(p)
        assert lu2.n == lu.n
        assert lu2.part.N == lu.part.N
        assert set(lu2.matrix.blocks) == set(lu.matrix.blocks)
        assert lu2.sym.factor_entries == lu.sym.factor_entries

    def test_blocks_are_copies(self, lu_and_dense, tmp_path):
        lu, D, om = lu_and_dense
        p = tmp_path / "f.npz"
        save_factorization(p, lu)
        lu2 = load_factorization(p)
        key = next(iter(lu.matrix.blocks))
        lu2.matrix.blocks[key][:] = 0.0
        assert not np.array_equal(lu2.matrix.blocks[key], lu.matrix.blocks[key]) or (
            not np.any(lu.matrix.blocks[key])
        )


class TestSharedMemoryThreads:
    @pytest.mark.parametrize("nthreads", [1, 2, 4])
    def test_bitwise_equal_to_sequential(self, nthreads):
        A = random_nonsymmetric(70, density=0.08, seed=93)
        om = prepare_matrix(A)
        seq = sstar_factor(om.A)
        par = sstar_factor_threads(om.A, nthreads=nthreads)
        for key, blk in seq.matrix.blocks.items():
            assert np.array_equal(blk, par.matrix.blocks[key])
        assert seq.matrix.pivot_seq == par.matrix.pivot_seq

    def test_counters_complete(self):
        A = random_nonsymmetric(60, density=0.1, seed=94)
        om = prepare_matrix(A)
        seq = sstar_factor(om.A)
        par = sstar_factor_threads(om.A, nthreads=3)
        assert par.counter.total == pytest.approx(seq.counter.total)

    def test_threshold_supported(self):
        A = random_nonsymmetric(50, density=0.1, seed=95)
        om = prepare_matrix(A)
        seq = sstar_factor(om.A, pivot_threshold=0.2)
        par = sstar_factor_threads(om.A, nthreads=2, pivot_threshold=0.2)
        b = np.ones(50)
        assert np.array_equal(seq.solve(b), par.solve(b))


class TestTimeline:
    def test_render_from_simulation(self):
        from repro.analysis import render_timeline, overlap_profile
        from repro.machine import T3E
        from repro.parallel import run_2d
        from repro.supernodes import build_partition, build_block_structure
        from repro.symbolic import static_symbolic_factorization

        A = random_nonsymmetric(60, density=0.1, seed=96)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=5, amalgamation=3)
        bstruct = build_block_structure(sym, part)
        res = run_2d(om.A, part, bstruct, 4, T3E)
        text = render_timeline(res.sim.spans, 4)
        assert "P0" in text and "total" in text
        prof = overlap_profile(res.sim.spans, 4)
        assert max(prof) >= 1

    def test_empty_spans(self):
        from repro.analysis import render_timeline

        assert "no spans" in render_timeline([], 2)
