"""Table 3 — absolute performance (MFLOPS) of the 1D RAPID code.

Paper: MFLOPS on T3D and T3E for P = 2..64; performance grows with P,
T3E about 3x T3D, and speedups over sequential S* reach ~17.7 (T3D) /
~24.1 (T3E) on 64 nodes for the larger matrices.
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import achieved_mflops
from repro.machine import T3D, T3E
from repro.parallel import run_1d

MATRICES = ["sherman5", "lnsp3937", "jpwh991", "orsreg1", "goodwin", "b33_5600"]
PROCS = [2, 4, 8, 16, 32, 64]


@pytest.fixture(scope="module")
def table3_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        row = {"matrix": name}
        for spec in (T3D, T3E):
            for p in PROCS:
                res = run_1d(
                    ctx.ordered.A, ctx.part, ctx.bstruct, p, spec,
                    method="rapid", tg=ctx.taskgraph,
                )
                row[f"{spec.name}_P{p}"] = achieved_mflops(
                    ctx.superlu_flops, res.parallel_seconds
                )
        rows.append(row)
    return rows


def test_table3_report(table3_rows):
    header = ["matrix"] + [f"T3E P={p}" for p in PROCS]
    rows = [
        tuple([r["matrix"]] + [f"{r[f'T3E_P{p}']:.1f}" for p in PROCS])
        for r in table3_rows
    ]
    print_table("Table 3: 1D RAPID MFLOPS (T3E; T3D in results json)", header, rows)
    save_results("table3", table3_rows)

    for r in table3_rows:
        # more processors should not hurt badly, and T3E > T3D throughout
        for p in PROCS:
            assert r[f"T3E_P{p}"] > r[f"T3D_P{p}"], (r["matrix"], p)
        assert r["T3E_P16"] >= r["T3E_P2"] * 0.9, r["matrix"]


def test_bench_rapid_run(benchmark, ctx_cache):
    ctx = ctx_cache("sherman5")

    def run():
        return run_1d(
            ctx.ordered.A, ctx.part, ctx.bstruct, 8, T3E,
            method="rapid", tg=ctx.taskgraph,
        )

    res = benchmark(run)
    assert res.parallel_seconds > 0
