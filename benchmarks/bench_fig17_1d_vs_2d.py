"""Fig. 17 — performance improvement of 1D RAPID over the 2D code.

Paper: ``1 - PT_RAPID / PT_2D`` is positive across the overlap matrices —
graph scheduling's comm/comp overlap beats the simple 2D pipeline when the
problem fits in 1D memory — and the gap is largest where the 2D code's load
balance advantage (Fig. 18) is smallest.
"""

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.parallel import run_1d, run_2d

MATRICES = ["sherman5", "lnsp3937", "lns3937", "jpwh991", "orsreg1", "goodwin"]
NPROCS = 8


@pytest.fixture(scope="module")
def fig17_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        t1 = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E,
                    method="rapid", tg=ctx.taskgraph).parallel_seconds
        t2 = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E).parallel_seconds
        rows.append({
            "matrix": name,
            "t_rapid": t1,
            "t_2d": t2,
            "improvement": 1.0 - t1 / t2,
        })
    return rows


def test_fig17_report(fig17_rows):
    header = ["matrix", "PT_RAPID (s)", "PT_2D (s)", "1 - RAPID/2D"]
    rows = [
        (r["matrix"], f"{r['t_rapid']:.5f}", f"{r['t_2d']:.5f}",
         f"{r['improvement']:+.1%}")
        for r in fig17_rows
    ]
    print_table(f"Fig. 17: 1D RAPID vs 2D async at P={NPROCS}", header, rows)
    save_results("fig17", fig17_rows)

    # the paper's finding: 1D RAPID wins when memory suffices — allow
    # near-ties (within 5%) on the matrices where the 2D mapping's load
    # balance compensates (the Fig. 18 interaction)
    wins = [r for r in fig17_rows if r["improvement"] > 0]
    competitive = [r for r in fig17_rows if r["improvement"] > -0.05]
    assert len(wins) >= len(fig17_rows) / 2
    assert len(competitive) == len(fig17_rows)


def test_bench_side_by_side(benchmark, ctx_cache):
    ctx = ctx_cache("lnsp3937")

    def run():
        return run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.parallel_seconds > 0
