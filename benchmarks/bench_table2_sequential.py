"""Table 2 — sequential performance: S* versus SuperLU.

Paper columns per machine (T3D, T3E): execution seconds and MFLOPS for S*
and SuperLU, and the exec-time ratio S*/SuperLU.  Paper headline: despite
executing up to ~4x the flops, S* stays within ~0.5-2x of SuperLU's time
because its updates run at the DGEMM rate (and it *wins* on dense/denser
matrices where the DGEMM fraction approaches 1).

Modeled seconds come from the calibrated machine specs: S* prices its
kernel tally (Eq. 2); SuperLU prices its dynamic flops at the DGEMV rate
plus the measured symbolic-overhead factor h (Eqs. 1, 3).
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import achieved_mflops, sequential_time_model
from repro.machine import T3D, T3E

MATRICES = [
    "sherman5",
    "lnsp3937",
    "lns3937",
    "sherman3",
    "jpwh991",
    "orsreg1",
    "saylr4",
    "goodwin",
    "b33_5600",
    "dense1000",
]

#: SuperLU symbolic/numeric time ratio; the paper bounds it by 0.82.
H_SYMBOLIC = 0.5


@pytest.fixture(scope="module")
def table2_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        lu = ctx.sequential_factor()
        superlu_flops = ctx.superlu_flops
        row = {"matrix": name, "flop_ratio": lu.counter.total / superlu_flops,
               "dgemm_fraction": lu.counter.fraction("dgemm")}
        for spec in (T3D, T3E):
            t_sstar = lu.counter.modeled_seconds(spec)
            model = sequential_time_model(
                spec,
                superlu_flops,
                lu.counter.total,
                lu.counter.fraction("dgemm"),
                h=H_SYMBOLIC,
            )
            t_superlu = model.t_superlu
            row[f"{spec.name}_sstar_s"] = t_sstar
            row[f"{spec.name}_superlu_s"] = t_superlu
            row[f"{spec.name}_sstar_mflops"] = achieved_mflops(superlu_flops, t_sstar)
            row[f"{spec.name}_superlu_mflops"] = achieved_mflops(
                superlu_flops, t_superlu
            )
            row[f"{spec.name}_ratio"] = t_sstar / t_superlu
        rows.append(row)
    return rows


def test_table2_report(table2_rows):
    header = [
        "matrix", "S* T3D(s)", "SLU T3D(s)", "S* MF", "SLU MF",
        "ratio T3D", "ratio T3E", "C~/C", "r(dgemm)",
    ]
    rows = [
        (
            r["matrix"],
            f"{r['T3D_sstar_s']:.4f}",
            f"{r['T3D_superlu_s']:.4f}",
            f"{r['T3D_sstar_mflops']:.1f}",
            f"{r['T3D_superlu_mflops']:.1f}",
            f"{r['T3D_ratio']:.2f}",
            f"{r['T3E_ratio']:.2f}",
            f"{r['flop_ratio']:.2f}",
            f"{r['dgemm_fraction']:.2f}",
        )
        for r in table2_rows
    ]
    print_table("Table 2: sequential S* vs SuperLU (modeled)", header, rows)
    save_results("table2", table2_rows)

    for r in table2_rows:
        # S* must stay within a competitive band.  At the reduced synthetic
        # scale the dense-block padding weighs relatively heavier than at
        # the paper's 4-17k orders, so the band is wider than Table 2's
        # 0.5-1.6 but the ordering of matrices (near-symmetric reservoir
        # matrices cheap, pattern-nonsymmetric CFD matrices expensive,
        # dense a clear win) is preserved.
        assert r["T3D_ratio"] < 5.0, r["matrix"]
        assert r["T3E_ratio"] < 5.0, r["matrix"]
    # the dense matrix is where S* wins outright (paper: ratio ~0.5)
    dense = next(r for r in table2_rows if r["matrix"] == "dense1000")
    assert dense["T3D_ratio"] < 1.0
    assert dense["dgemm_fraction"] > 0.8
    # T3E's faster DGEMM should not make S* relatively worse on dense
    assert dense["T3E_ratio"] < 1.0


def test_bench_sstar_numeric_factorization(benchmark, ctx_cache):
    """Wall-clock the real numeric factorization (the Table 2 operation)."""
    ctx = ctx_cache("sherman5")

    def run():
        return ctx.sequential_factor()

    lu = benchmark(run)
    assert lu.counter.total > 0


def test_bench_dense_factorization(benchmark, ctx_cache):
    ctx = ctx_cache("dense1000")

    def run():
        return ctx.sequential_factor()

    lu = benchmark(run)
    assert lu.counter.fraction("dgemm") > 0.8
