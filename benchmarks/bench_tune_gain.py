"""Autotuning gain — ``repro.tune`` search vs the static default config.

The paper configures by hand: block size 25 everywhere and, for the
parallel codes, the 2D asynchronous pipeline on the preferred
``p_c / p_r ~ 2`` grid (Section 6).  The model-guided tuner must match or
beat that hand configuration per matrix pattern — this bench records the
measured margin on a spread of suite matrices, and the ``tune-smoke`` CI
job asserts a subset of it under a hard timeout.
"""

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.matrices import get_matrix
from repro.tune import Tuner, default_plan

MATRICES = ["sherman5", "goodwin", "jpwh991", "orsreg1"]
NPROCS = 8


@pytest.fixture(scope="module")
def tune_gain_rows():
    rows = []
    for name in MATRICES:
        A = get_matrix(name, "small")
        tuner = Tuner(spec=T3E, nprocs=NPROCS, budget="auto", seed=0)
        res = tuner.tune(A)
        base = default_plan(NPROCS)
        base_probe = tuner.simulate_plan(tuner.pattern_state(A), base)
        rows.append({
            "matrix": name,
            "n": A.nrows,
            "nnz": A.nnz,
            "default_plan": base.describe(),
            "default_seconds": base_probe["seconds"],
            "tuned_plan": res.best.describe(),
            "tuned_seconds": res.best_seconds,
            "speedup": base_probe["seconds"] / res.best_seconds,
            "search_budget_seconds": res.budget,
            "search_spent_seconds": res.budget_spent,
            "probes": sum(len(r.probes) for r in res.records),
        })
    return rows


def test_tune_gain_report(tune_gain_rows):
    header = ["matrix", "default", "tuned", "default ms", "tuned ms",
              "speedup", "probes"]
    rows = [
        (r["matrix"], r["default_plan"], r["tuned_plan"],
         f"{r['default_seconds']*1e3:.3f}", f"{r['tuned_seconds']*1e3:.3f}",
         f"{r['speedup']:.2f}x", r["probes"])
        for r in tune_gain_rows
    ]
    print_table(f"Autotuning gain over the static default (P={NPROCS})",
                header, rows)
    save_results("tune_gain", tune_gain_rows)

    # acceptance: the tuned plan beats the hand configuration by a real
    # margin on at least three suite matrices (and never loses to it)
    for r in tune_gain_rows:
        assert r["speedup"] >= 1.0 - 1e-9, (
            f"{r['matrix']}: tuned plan lost to the default "
            f"({r['tuned_seconds']:.6f} vs {r['default_seconds']:.6f} s)"
        )
    beats = [r for r in tune_gain_rows if r["speedup"] > 1.02]
    assert len(beats) >= 3, (
        "expected a >2% tuned win on at least 3 matrices, got "
        + str([(r["matrix"], round(r["speedup"], 3)) for r in tune_gain_rows])
    )


def test_bench_tune_search(benchmark):
    A = get_matrix("sherman5", "small")

    def run():
        return Tuner(spec=T3E, nprocs=NPROCS, budget="auto", seed=0).tune(A)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.best_seconds is not None
