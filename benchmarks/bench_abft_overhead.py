"""ABFT checksum overhead — modeled cost of silent-corruption protection.

Not a paper table: this prices the checksum ledger (anchor at Factor,
Huang-Abraham carry through every Update GEMM, row-sum carry through the
triangular solves) against the unprotected factorization, in modeled
kernel seconds on the paper's T3E rates and the GENERIC host profile.

The carry is O(b^2) work per O(b^3) GEMM, so relative overhead scales as
~1/b: at the paper's dense supernode size (b=25) protection costs <15%
of modeled T3E factor time — the acceptance bound asserted here on the
dense rows — while tiny-block sparse cases (b=6) pay proportionally
more and are reported unasserted.  Every protected run must also stay
bit-identical to its unprotected twin: checksums ride alongside the
numerics, never inside them.

Rows land in ``benchmarks/results/BENCH_abft_overhead.json``.
"""

import numpy as np

from conftest import print_table, save_results
from repro.machine import GENERIC, T3E
from repro.matrices import dense_matrix
from repro.numfact import KernelCounter, sstar_factor
from repro.ordering import prepare_matrix
from repro.supernodes import build_partition
from repro.symbolic import static_symbolic_factorization

SUITE_MATRICES = ["sherman5", "orsreg1"]
DENSE_SIZES = [150, 200]
PAPER_BLOCK = 25
ABFT_BUDGET = 0.15  # acceptance: <15% modeled T3E factor time at b=25


def _bitwise_equal(a, b):
    return (
        set(a.blocks) == set(b.blocks)
        and a.pivot_seq == b.pivot_seq
        and all(np.array_equal(a.blocks[k], b.blocks[k]) for k in a.blocks)
    )


def _measure(name, A, sym, part, block, asserted):
    c0, c1 = KernelCounter(), KernelCounter()
    base = sstar_factor(A, sym=sym, part=part, counter=c0)
    prot = sstar_factor(A, sym=sym, part=part, counter=c1, abft=True)
    assert _bitwise_equal(prot.matrix, base.matrix)
    assert prot.abft.detected == 0 and prot.abft.recovered == 0
    t3e0, t3e1 = c0.modeled_seconds(T3E), c1.modeled_seconds(T3E)
    gen0, gen1 = c0.modeled_seconds(GENERIC), c1.modeled_seconds(GENERIC)
    return {
        "matrix": name,
        "n": A.nrows,
        "block": block,
        "flops_overhead": c1.total / c0.total - 1.0,
        "t3e_overhead": t3e1 / t3e0 - 1.0,
        "generic_overhead": gen1 / gen0 - 1.0,
        "t3e_base_s": t3e0,
        "asserted": asserted,
    }


def test_abft_overhead_report(ctx_cache):
    rows = []
    for n in DENSE_SIZES:
        A = dense_matrix(n, seed=1)
        om = prepare_matrix(A)
        sym = static_symbolic_factorization(om.A)
        part = build_partition(sym, max_size=PAPER_BLOCK, amalgamation=4)
        rows.append(_measure(f"dense{n}", om.A, sym, part, PAPER_BLOCK,
                             asserted=True))
    for name in SUITE_MATRICES:
        ctx = ctx_cache(name)
        rows.append(_measure(name, ctx.ordered.A, ctx.sym, ctx.part,
                             ctx.block_size, asserted=False))

    header = ["matrix", "n", "b", "flops", "T3E", "GENERIC", "bound"]
    print_table(
        "ABFT checksum overhead (modeled factor time)",
        header,
        [
            (
                r["matrix"], r["n"], r["block"],
                f"{r['flops_overhead']:+.1%}", f"{r['t3e_overhead']:+.1%}",
                f"{r['generic_overhead']:+.1%}",
                "<15%" if r["asserted"] else "-",
            )
            for r in rows
        ],
    )
    save_results("abft_overhead", rows)

    for r in rows:
        assert r["flops_overhead"] > 0.0  # protection is never free
        if r["asserted"]:
            assert r["t3e_overhead"] < ABFT_BUDGET
            # the carry itself is cheaper than the modeled time overhead
            assert r["flops_overhead"] < r["t3e_overhead"] + 1e-12
