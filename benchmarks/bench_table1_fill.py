"""Table 1 — testing matrices and their statistics.

Paper columns: matrix, order, |A|, sym(A) (nnz(A+Aᵀ)/nnz(A) regime),
factor entries of Cholesky(AᵀA) / SuperLU / S* (all relative to |A|), and
the S*/SuperLU ops ratio.  Paper headline: S* overestimates fill by < ~50%
over SuperLU for most matrices while Cholesky(AᵀA) overshoots far more, and
the static ops can run several times the dynamic ops (mean ~3.98) — which
Section 6 shows the BLAS-3 kernels absorb.
"""

import pytest

from conftest import print_table, save_results

MATRICES = [
    "sherman5",
    "lnsp3937",
    "lns3937",
    "sherman3",
    "jpwh991",
    "orsreg1",
    "saylr4",
    "goodwin",
    "vavasis3",
]


@pytest.fixture(scope="module")
def table1_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        st = ctx.fill_stats
        rows.append(
            {
                "matrix": name,
                "order": st.order,
                "nnz": st.nnz,
                "sym": round(st.symmetry, 2),
                "entries_cholesky_ata": st.entries_cholesky_ata,
                "entries_superlu": st.entries_dynamic,
                "entries_sstar": st.entries_static,
                "entry_ratio_sstar_superlu": round(st.entry_ratio, 2),
                "entry_ratio_cholesky_superlu": round(st.cholesky_ratio, 2),
                "ops_ratio_sstar_superlu": round(st.ops_ratio, 2),
            }
        )
    return rows


def test_table1_report(table1_rows):
    header = [
        "matrix", "order", "|A|", "sym",
        "chol(AtA)", "SuperLU", "S*", "S*/SLU", "chol/SLU", "ops S*/SLU",
    ]
    rows = [
        (
            r["matrix"], r["order"], r["nnz"], r["sym"],
            r["entries_cholesky_ata"], r["entries_superlu"], r["entries_sstar"],
            r["entry_ratio_sstar_superlu"], r["entry_ratio_cholesky_superlu"],
            r["ops_ratio_sstar_superlu"],
        )
        for r in table1_rows
    ]
    print_table("Table 1: structure-prediction statistics", header, rows)
    save_results("table1", table1_rows)

    # shape assertions from the paper
    for r in table1_rows:
        assert r["entries_sstar"] >= r["entries_superlu"], r["matrix"]
        assert r["entries_cholesky_ata"] >= r["entries_sstar"], r["matrix"]
        assert r["ops_ratio_sstar_superlu"] >= 1.0, r["matrix"]
    # the static bound is usually much tighter than the Cholesky bound
    tighter = sum(
        1
        for r in table1_rows
        if r["entries_sstar"] <= r["entries_cholesky_ata"]
    )
    assert tighter == len(table1_rows)


def test_bench_static_symbolic(benchmark, ctx_cache):
    """Time the static symbolic factorization itself (the S* front-end)."""
    from repro.symbolic import static_symbolic_factorization

    ctx = ctx_cache("sherman5")
    A = ctx.ordered.A
    result = benchmark(static_symbolic_factorization, A)
    assert result.factor_entries > 0


def test_bench_cholesky_bound(benchmark, ctx_cache):
    from repro.sparse import ata_pattern
    from repro.symbolic import cholesky_ata_structure

    ctx = ctx_cache("sherman5")
    pattern = ata_pattern(ctx.ordered.A)
    lcol = benchmark(cholesky_ata_structure, pattern)
    assert len(lcol) == ctx.ordered.n


def test_bench_dynamic_factorization(benchmark, ctx_cache):
    from repro.baselines import superlu_like_factor

    ctx = ctx_cache("jpwh991")
    dyn = benchmark(superlu_like_factor, ctx.ordered.A)
    assert dyn.flops > 0
