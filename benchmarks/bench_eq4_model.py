"""Section 6.1 — the Eq. (1)-(4) analytic model against measurement.

Paper: plugging the measured DGEMM fraction r, flop ratio C~/C and symbolic
overhead h into Eq. (4) predicts the S*/SuperLU time ratio; for the dense
matrix (r = 1, C~/C = 1) the prediction is 0.48 (T3D) / 0.42 (T3E), "almost
the same as the ratios listed in Table 2".  We evaluate the model with our
measured per-matrix quantities and compare it with the directly modeled
ratio from the kernel tallies.
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import sequential_time_model
from repro.machine import T3D, T3E

MATRICES = ["sherman5", "orsreg1", "saylr4", "goodwin", "dense1000"]
H = 0.5


@pytest.fixture(scope="module")
def eq4_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        lu = ctx.sequential_factor()
        r = lu.counter.fraction("dgemm")
        row = {"matrix": name, "r": r,
               "flop_ratio": lu.counter.total / ctx.superlu_flops}
        for spec in (T3D, T3E):
            model = sequential_time_model(
                spec, ctx.superlu_flops, lu.counter.total, r, h=H
            )
            measured = lu.counter.modeled_seconds(spec) / model.t_superlu
            row[f"{spec.name}_eq4"] = model.time_ratio
            row[f"{spec.name}_measured"] = measured
        rows.append(row)
    return rows


def test_eq4_report(eq4_rows):
    header = ["matrix", "r", "C~/C", "Eq4 T3D", "meas T3D", "Eq4 T3E", "meas T3E"]
    rows = [
        (
            r["matrix"], f"{r['r']:.2f}", f"{r['flop_ratio']:.2f}",
            f"{r['T3D_eq4']:.2f}", f"{r['T3D_measured']:.2f}",
            f"{r['T3E_eq4']:.2f}", f"{r['T3E_measured']:.2f}",
        )
        for r in eq4_rows
    ]
    print_table("Eq. (4): predicted vs measured S*/SuperLU time ratio", header, rows)
    save_results("eq4", eq4_rows)

    for r in eq4_rows:
        # the analytic model prices flops at the flat block-25 rates while
        # the measurement derates narrow blocks — exactly the "discrepancy
        # caused by nonuniform submatrix sizes" the paper reports, so the
        # sparse matrices agree only within a factor ~2
        assert r["T3D_eq4"] == pytest.approx(r["T3D_measured"], rel=0.8), r["matrix"]
    dense = next(r for r in eq4_rows if r["matrix"] == "dense1000")
    # dense blocks run at the reference granularity: tight agreement
    assert dense["T3D_eq4"] == pytest.approx(dense["T3D_measured"], rel=0.15)
    assert dense["T3E_eq4"] < dense["T3D_eq4"]


def test_bench_model_evaluation(benchmark, ctx_cache):
    ctx = ctx_cache("sherman5")
    lu = ctx.sequential_factor()

    def run():
        return sequential_time_model(
            T3E, ctx.superlu_flops, lu.counter.total,
            lu.counter.fraction("dgemm"), h=H,
        )

    model = benchmark(run)
    assert model.time_ratio > 0
