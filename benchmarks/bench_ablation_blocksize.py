"""Ablation — maximum supernode block size (Section 6 preamble).

Paper: "We have used block size 25 in our experiments, since, if the block
size is too large, the available parallelism will be reduced" — and too
small a block forfeits the BLAS-3 rates.  We sweep the cap and report the
sequential modeled time (cache effect), the DGEMM fraction, and the 1D
parallel time on 8 nodes (parallelism effect).
"""

import pytest

from conftest import print_table, save_results
from repro.api import ExperimentContext
from repro.machine import T3E
from repro.parallel import run_1d
from repro.taskgraph import build_task_graph
from repro.tune.space import BLOCK_SIZES

# the sweep is the autotuner's declared block-size axis, so the ablation
# and the `repro tune` search space can never drift apart
SIZES = list(BLOCK_SIZES)


@pytest.fixture(scope="module")
def blocksize_rows():
    rows = []
    for bs in SIZES:
        ctx = ExperimentContext("sherman5", scale="small",
                                block_size=bs, amalgamation=4)
        lu = ctx.sequential_factor()
        tg = build_task_graph(ctx.bstruct)
        par = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, 8, T3E,
                     method="rapid", tg=tg)
        rows.append({
            "block_size": bs,
            "blocks": ctx.part.N,
            "seq_seconds": lu.counter.modeled_seconds(T3E),
            "dgemm_fraction": lu.counter.fraction("dgemm"),
            "par8_seconds": par.parallel_seconds,
        })
    return rows


def test_blocksize_ablation_report(blocksize_rows):
    header = ["max block", "N blocks", "seq (ms)", "dgemm frac", "P=8 (ms)"]
    rows = [
        (r["block_size"], r["blocks"], f"{r['seq_seconds']*1e3:.3f}",
         f"{r['dgemm_fraction']:.2f}", f"{r['par8_seconds']*1e3:.3f}")
        for r in blocksize_rows
    ]
    print_table("Ablation: supernode block-size cap (sherman5)", header, rows)
    save_results("ablation_blocksize", blocksize_rows)

    by = {r["block_size"]: r for r in blocksize_rows}
    # tiny blocks lose the BLAS-3 rates: sequential time at cap 2 or 4 is
    # worse than at the paper's 25 (the DGEMM *fraction* alone is not the
    # signal — a 2-wide GEMM still counts as BLAS-3 but runs derated)
    assert by[2]["seq_seconds"] > by[25]["seq_seconds"]
    assert by[4]["seq_seconds"] > by[25]["seq_seconds"]
    # the partition coarsens monotonically
    blocks = [r["blocks"] for r in blocksize_rows]
    assert all(a >= b for a, b in zip(blocks, blocks[1:]))


def test_bench_partition_sweep(benchmark):
    ctx = ExperimentContext("sherman5", scale="small")

    def run():
        from repro.supernodes import build_partition

        return build_partition(ctx.sym, max_size=25, amalgamation=4)

    part = benchmark(run)
    assert part.N > 0
