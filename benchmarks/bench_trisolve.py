"""Triangular-solve cost — "much less time consuming than the Gaussian
elimination process" (Section 2).

Compares the modeled time of the distributed triangular solves (1D and 2D)
with their factorizations, and reports the solve's message count — the
solves are latency-bound, which is why the paper focuses its engineering on
the factorization.
"""

import numpy as np
import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.numfact import LUFactorization
from repro.parallel import run_1d, run_1d_trisolve, run_2d, run_2d_trisolve

MATRICES = ["sherman5", "orsreg1", "goodwin"]
NPROCS = 8


@pytest.fixture(scope="module")
def trisolve_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        b = np.ones(ctx.ordered.n)
        r1 = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E,
                    method="rapid", tg=ctx.taskgraph)
        lu1 = LUFactorization(r1.factor, ctx.sym, ctx.part, ctx.bstruct,
                              r1.sim.total_counter())
        t1 = run_1d_trisolve(lu1, r1.schedule.owner, b, NPROCS, T3E)
        r2 = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E)
        lu2 = LUFactorization(r2.factor, ctx.sym, ctx.part, ctx.bstruct,
                              r2.sim.total_counter())
        t2 = run_2d_trisolve(lu2, b, NPROCS, T3E, grid=r2.grid)
        rows.append({
            "matrix": name,
            "factor_1d_s": r1.parallel_seconds,
            "solve_1d_s": t1.parallel_seconds,
            "ratio_1d": t1.parallel_seconds / r1.parallel_seconds,
            "factor_2d_s": r2.parallel_seconds,
            "solve_2d_s": t2.parallel_seconds,
            "ratio_2d": t2.parallel_seconds / r2.parallel_seconds,
            "solve_msgs_1d": t1.sim.messages,
            "solve_msgs_2d": t2.sim.messages,
        })
    return rows


def test_trisolve_report(trisolve_rows):
    header = ["matrix", "1D factor (ms)", "1D solve (ms)", "solve/factor",
              "2D factor (ms)", "2D solve (ms)", "solve/factor"]
    rows = [
        (r["matrix"],
         f"{r['factor_1d_s']*1e3:.3f}", f"{r['solve_1d_s']*1e3:.3f}",
         f"{r['ratio_1d']:.2f}",
         f"{r['factor_2d_s']*1e3:.3f}", f"{r['solve_2d_s']*1e3:.3f}",
         f"{r['ratio_2d']:.2f}")
        for r in trisolve_rows
    ]
    print_table(f"Triangular solves vs factorization at P={NPROCS}", header, rows)
    save_results("trisolve", trisolve_rows)

    # solves are far cheaper on average; on the tiniest/sparsest analogues
    # both phases are latency-bound so individual ratios can graze 1.0
    for r in trisolve_rows:
        assert r["ratio_1d"] < 1.2, r["matrix"]
        assert r["ratio_2d"] < 1.2, r["matrix"]
    mean_1d = sum(r["ratio_1d"] for r in trisolve_rows) / len(trisolve_rows)
    assert mean_1d < 0.8


def test_bench_1d_trisolve(benchmark, ctx_cache):
    ctx = ctx_cache("sherman5")
    r1 = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E,
                method="rapid", tg=ctx.taskgraph)
    lu1 = LUFactorization(r1.factor, ctx.sym, ctx.part, ctx.bstruct,
                          r1.sim.total_counter())
    b = np.ones(ctx.ordered.n)

    def run():
        return run_1d_trisolve(lu1, r1.schedule.owner, b, NPROCS, T3E)

    res = benchmark(run)
    assert res.parallel_seconds > 0
