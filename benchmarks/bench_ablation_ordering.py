"""Ablation — ordering strategy vs static-overestimation ratio.

Paper, Section 3.1 and the conclusion: static symbolic factorization "could
fail to be practical if the input matrix has a nearly dense row"; for
memplus the AᵀA-based ordering overestimates SuperLU's fill 119x, dropping
to 2.34x when the ordering is computed on AᵀA for SuperLU too (SuperLU used
A+Aᵀ there); studying orderings that minimise overestimation is named as
future work.  We reproduce the phenomenon: a nearly-dense-row matrix under
``mindeg-ata``, ``mindeg-aplusat`` and ``natural`` orderings.
"""

import pytest

from conftest import print_table, save_results
from repro.baselines import superlu_like_factor
from repro.matrices import nearly_dense_row, get_matrix
from repro.ordering import prepare_matrix
from repro.symbolic import static_symbolic_factorization

ORDERINGS = ["mindeg-ata", "mindeg-aplusat", "natural"]


def _ratios(A, ordering):
    om = prepare_matrix(A, ordering=ordering)
    sym = static_symbolic_factorization(om.A)
    dyn = superlu_like_factor(om.A)
    return {
        "static": sym.factor_entries,
        "dynamic": dyn.factor_entries,
        "ratio": sym.factor_entries / max(dyn.factor_entries, 1),
    }


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    cases = {
        "memplus-like (dense row)": nearly_dense_row(150, row_fill=0.6, seed=5),
        "orsreg1 (regular)": get_matrix("orsreg1", "small"),
        "goodwin (irregular)": get_matrix("goodwin", "small"),
    }
    for name, A in cases.items():
        row = {"matrix": name}
        for o in ORDERINGS:
            r = _ratios(A, o)
            row[f"{o}_ratio"] = round(r["ratio"], 2)
            row[f"{o}_static"] = r["static"]
        rows.append(row)
    return rows


def test_ordering_ablation_report(ablation_rows):
    header = ["matrix"] + [f"{o} S*/SLU" for o in ORDERINGS]
    rows = [
        tuple([r["matrix"]] + [r[f"{o}_ratio"] for o in ORDERINGS])
        for r in ablation_rows
    ]
    print_table("Ablation: ordering vs overestimation ratio", header, rows)
    save_results("ablation_ordering", ablation_rows)

    dense_row = next(r for r in ablation_rows if "memplus" in r["matrix"])
    regular = next(r for r in ablation_rows if "orsreg1" in r["matrix"])
    # the pathology: a nearly dense row inflates the static bound far more
    # than on regular matrices
    assert dense_row["mindeg-ata_ratio"] > regular["mindeg-ata_ratio"] * 1.5
    # all orderings keep static >= dynamic
    for r in ablation_rows:
        for o in ORDERINGS:
            assert r[f"{o}_ratio"] >= 1.0


def test_bench_ordering_pipeline(benchmark):
    A = get_matrix("orsreg1", "small")
    om = benchmark(prepare_matrix, A)
    assert om.A.has_zero_free_diagonal()
