"""Ablation — 2D grid aspect ratio (Section 5.2).

Paper: "we assume that p_r <= p_c + 1, because, based on our experimental
results, setting p_r <= p_c + 1 always leads to better performance" and
"in practice, we set p_c / p_r = 2".  We sweep all factorizations of P and
compare modeled times, plus the Theorem 2 buffer totals per shape.
"""

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.parallel import Grid2D, buffer_requirements, run_2d
from repro.tune.space import grid_shapes

NPROCS = 16


@pytest.fixture(scope="module")
def grid_rows(ctx_cache):
    ctx = ctx_cache("goodwin")
    rows = []
    # every factorization of P from the autotuner's declared grid axis —
    # the ablation intentionally includes the degenerate tall shapes the
    # tuner's paper_regime filter would drop, to show why it drops them
    for pr, pc in grid_shapes(NPROCS, paper_regime=False):
        g = Grid2D(pr, pc)
        res = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E, grid=g)
        rep = buffer_requirements(ctx.bstruct, g)
        rows.append({
            "grid": f"{pr}x{pc}",
            "pr": pr,
            "pc": pc,
            "seconds": res.parallel_seconds,
            "overlap": res.overlap_degree(),
            "buffer_bytes": rep.total,
            "messages": res.sim.messages,
        })
    return rows


def test_grid_ablation_report(grid_rows):
    header = ["grid", "seconds", "overlap", "buffer KiB", "messages"]
    rows = [
        (r["grid"], f"{r['seconds']*1e3:.3f} ms", r["overlap"],
         f"{r['buffer_bytes']/1024:.1f}", r["messages"])
        for r in grid_rows
    ]
    print_table(f"Ablation: 2D grid shape at P={NPROCS}", header, rows)
    save_results("ablation_grid", grid_rows)

    by_shape = {r["grid"]: r for r in grid_rows}
    # the paper's preferred wide-grid regime (p_c >= p_r) must beat the
    # degenerate tall grid p_r = P (which serializes every Factor reduction)
    wide_best = min(
        r["seconds"] for r in grid_rows if r["pc"] >= r["pr"]
    )
    assert wide_best <= by_shape["16x1"]["seconds"]
    # overlap degree stays within the Theorem 2 bound p_c
    for r in grid_rows:
        assert r["overlap"] <= r["pc"]


def test_bench_grid_run(benchmark, ctx_cache):
    ctx = ctx_cache("goodwin")

    def run():
        return run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E,
                      grid=Grid2D(2, 8))

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.parallel_seconds > 0
