"""Fig. 11 — Gantt charts: graph scheduling vs compute-ahead.

The paper's example (the 7x7 sample matrix of Fig. 4, unit computation
weight 2, communication weight 1) shows the CA schedule forced to place
Factor(3) after Update(1,5) — one-step lookahead — while graph scheduling
executes it earlier and wins.  We rebuild the demonstration on a small
sample matrix and print both charts.
"""


from conftest import save_results
from repro.matrices import random_nonsymmetric
from repro.ordering import prepare_matrix
from repro.scheduling import demo_unit_weight_charts
from repro.supernodes import build_block_structure, build_partition
from repro.symbolic import static_symbolic_factorization
from repro.taskgraph import build_task_graph


def _sample_task_graph():
    A = random_nonsymmetric(28, density=0.12, seed=73)
    om = prepare_matrix(A)
    sym = static_symbolic_factorization(om.A)
    part = build_partition(sym, max_size=4, amalgamation=2)
    bstruct = build_block_structure(sym, part)
    return build_task_graph(bstruct)


def test_fig11_report():
    tg = _sample_task_graph()
    ca, gs = demo_unit_weight_charts(tg, nprocs=2)
    print("\n== Fig. 11a: graph schedule (unit weights: comp 2, comm 1) ==")
    print(gs.render(width=64))
    print("\n== Fig. 11b: compute-ahead schedule ==")
    print(ca.render(width=64))
    save_results(
        "fig11",
        [{"ca_makespan": ca.makespan, "graph_makespan": gs.makespan}],
    )
    assert gs.makespan <= ca.makespan


def test_bench_schedule_construction(benchmark):
    from repro.machine import T3E
    from repro.scheduling import graph_schedule

    tg = _sample_task_graph()
    sched = benchmark(graph_schedule, tg, 4, T3E)
    assert sched.makespan_estimate > 0
