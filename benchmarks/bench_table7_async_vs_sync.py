"""Table 7 — 2D asynchronous vs synchronous (barrier-per-stage) code.

Paper: improvement ``1 - PT_async / PT_sync`` from ~3-10% at P = 2-4 up to
~25-35% at P = 16-64 — overlapping update stages matters more the wider the
machine.
"""

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.parallel import run_2d

MATRICES = ["sherman5", "lnsp3937", "jpwh991", "orsreg1", "saylr4", "goodwin", "vavasis3"]
PROCS = [2, 4, 8, 16, 32, 64]


@pytest.fixture(scope="module")
def table7_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        row = {"matrix": name}
        for p in PROCS:
            ta = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E,
                        synchronous=False).parallel_seconds
            ts = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E,
                        synchronous=True).parallel_seconds
            row[f"P{p}"] = 1.0 - ta / ts
        rows.append(row)
    return rows


def test_table7_report(table7_rows):
    header = ["matrix"] + [f"P={p}" for p in PROCS]
    rows = [
        tuple([r["matrix"]] + [f"{r[f'P{p}']:+.1%}" for p in PROCS])
        for r in table7_rows
    ]
    print_table("Table 7: 2D async improvement over sync", header, rows)
    save_results("table7", table7_rows)

    for r in table7_rows:
        # async never loses
        for p in PROCS:
            assert r[f"P{p}"] >= -0.02, (r["matrix"], p)
    # the improvement grows with machine width (paper's key observation)
    mean_small = sum(r["P2"] for r in table7_rows) / len(table7_rows)
    mean_large = sum(r["P32"] for r in table7_rows) / len(table7_rows)
    assert mean_large > mean_small


def test_bench_sync_run(benchmark, ctx_cache):
    ctx = ctx_cache("orsreg1")

    def run():
        return run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, 8, T3E,
                      synchronous=True)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.parallel_seconds > 0
