"""Table 5 — 2D asynchronous code on T3D for larger matrices.

Paper: P = 16/32/64, seconds and MFLOPS; 1.48 GFLOPS peak on 64 nodes for
vavasis3 (23.1 MFLOPS/node; 32.8 MFLOPS/node at 16).  The large matrices
only fit under the 2D mapping — the memory-scalability selling point.
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import achieved_mflops
from repro.machine import T3D
from repro.parallel import run_2d

MATRICES = ["goodwin", "e40r0100", "ex11", "raefsky4", "vavasis3"]
PROCS = [16, 32, 64]


@pytest.fixture(scope="module")
def table5_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        row = {"matrix": name}
        for p in PROCS:
            res = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, p, T3D)
            row[f"P{p}_s"] = res.parallel_seconds
            row[f"P{p}_mflops"] = achieved_mflops(
                ctx.superlu_flops, res.parallel_seconds
            )
        rows.append(row)
    return rows


def test_table5_report(table5_rows):
    header = ["matrix"] + [h for p in PROCS for h in (f"P={p} (s)", "MFLOPS")]
    rows = [
        tuple(
            [r["matrix"]]
            + [
                v
                for p in PROCS
                for v in (f"{r[f'P{p}_s']:.4f}", f"{r[f'P{p}_mflops']:.1f}")
            ]
        )
        for r in table5_rows
    ]
    print_table("Table 5: 2D asynchronous code on T3D", header, rows)
    save_results("table5", table5_rows)

    from conftest import SCALE

    for r in table5_rows:
        for p in PROCS:
            assert r[f"P{p}_mflops"] > 0
        # scaling the grid must not collapse performance; the paper's
        # monotone-improvement shape needs bench-scale problems to emerge —
        # the reduced analogues saturate the pipeline well before P=64
        limit = 1.3 if SCALE == "bench" else 2.5
        assert r["P64_s"] < r["P16_s"] * limit, r["matrix"]


def test_bench_2d_t3d(benchmark, ctx_cache):
    ctx = ctx_cache("goodwin")

    def run():
        return run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, 16, T3D)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.parallel_seconds > 0
