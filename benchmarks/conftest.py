"""Shared benchmark plumbing.

Scale selection: ``REPRO_BENCH_SCALE=small`` (default; suite analogues of a
few hundred unknowns, the whole harness runs in minutes) or ``bench``
(1-3k unknowns, slower but with more pronounced BLAS-3/pipeline effects).

Every bench prints the paper-style table it reproduces and appends its rows
to ``benchmarks/results/*.json`` so ``tools/make_experiments.py`` can
regenerate EXPERIMENTS.md from a full run.
"""

import json
import os
from pathlib import Path

import pytest

from repro.api import ExperimentContext
from repro.api.fixtures import MemoCache

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
RESULTS_DIR = Path(__file__).parent / "results"


def _build_context(name: str, amalgamation: int = 4) -> ExperimentContext:
    return ExperimentContext(name, scale=SCALE, amalgamation=amalgamation)


@pytest.fixture(scope="session")
def ctx_cache():
    """Session cache of ExperimentContexts keyed by (name, amalgamation);
    memoisation shared with tests/conftest via repro.api.fixtures."""
    return MemoCache(_build_context).get


def save_results(table: str, rows) -> None:
    """Persist bench rows for the EXPERIMENTS.md generator.

    Every result file is named ``BENCH_<table>.json`` (pass the bare table
    key; a legacy ``BENCH_`` prefix in ``table`` is not doubled)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    if not table.startswith("BENCH_"):
        table = f"BENCH_{table}"
    path = RESULTS_DIR / f"{table}.json"
    path.write_text(json.dumps({"scale": SCALE, "rows": rows}, indent=2))


def print_table(title: str, header, rows) -> None:
    """Fixed-width table printer for paper-style output."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
