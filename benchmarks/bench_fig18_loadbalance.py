"""Fig. 18 — load-balance factors of the 1D RAPID and 2D codes.

Paper: load balance factor = work_total / (P * work_max), counting update
work only.  The 2D block-cyclic mapping balances better than the 1D
column mapping on most matrices, which partly compensates for its simpler
scheduling (read together with Fig. 17).
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import load_balance_factor
from repro.analysis.loadbalance import update_work_by_rank
from repro.machine import T3E
from repro.parallel import run_1d, run_2d

MATRICES = ["sherman5", "lnsp3937", "lns3937", "jpwh991", "orsreg1", "goodwin"]
NPROCS = 8


@pytest.fixture(scope="module")
def fig18_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        r1 = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E,
                    method="rapid", tg=ctx.taskgraph)
        r2 = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E)
        rows.append({
            "matrix": name,
            "lb_1d": load_balance_factor(update_work_by_rank(r1.sim)),
            "lb_2d": load_balance_factor(update_work_by_rank(r2.sim)),
        })
    return rows


def test_fig18_report(fig18_rows):
    header = ["matrix", "1D RAPID", "2D"]
    rows = [
        (r["matrix"], f"{r['lb_1d']:.3f}", f"{r['lb_2d']:.3f}")
        for r in fig18_rows
    ]
    print_table(f"Fig. 18: load balance factors at P={NPROCS}", header, rows)
    save_results("fig18", fig18_rows)

    for r in fig18_rows:
        assert 0.0 < r["lb_1d"] <= 1.0
        assert 0.0 < r["lb_2d"] <= 1.0
    # the 2D mapping balances at least as well on average (paper's claim)
    m1 = sum(r["lb_1d"] for r in fig18_rows) / len(fig18_rows)
    m2 = sum(r["lb_2d"] for r in fig18_rows) / len(fig18_rows)
    assert m2 > m1 * 0.85


def test_bench_loadbalance_extraction(benchmark, ctx_cache):
    ctx = ctx_cache("orsreg1")
    res = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E)
    lb = benchmark(lambda: load_balance_factor(update_work_by_rank(res.sim)))
    assert 0 < lb <= 1
