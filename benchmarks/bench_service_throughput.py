"""Serving-layer throughput — cold factor vs cached refactor vs batched RHS.

Not a paper table: this quantifies what the PR's serving layer buys on the
paper's test matrices.  Three effects are measured in wall-clock time:

* **amortization** — a cold ``factor`` pays the full George-Ng analyze
  phase (transversal, ordering, symbolic, partition) on every call; a
  cache-hit ``refactor`` of a same-pattern matrix pays only the numeric
  Factor/Update sweep.  The issue's acceptance bar is >= 3x on the analyze
  phase; we assert it on the end-to-end ratio's analyze component.
* **multi-RHS batching** — one ``solve`` of an ``(n, k)`` block against
  ``k`` sequential vector solves (BLAS-3 vs repeated BLAS-2 sweeps over
  the factor blocks).
* **bit-fidelity** — warm refactors must be bit-identical to cold
  factors of the same values, otherwise the cache would silently change
  answers.

Rows land in ``benchmarks/results/BENCH_service_throughput.json``.
"""

import time

import numpy as np
import pytest

from conftest import print_table, save_results
from repro.api import SStarSolver
from repro.matrices import get_matrix
from repro.service import AnalysisCache

MATRICES = ["sherman5", "jpwh991", "orsreg1"]
REPEATS = 3
NRHS = 8


def _perturbed(A, rng, rel=0.05):
    return A.with_values(A.data * (1.0 + rel * rng.uniform(-1.0, 1.0, A.nnz)))


def _bitwise_equal(a, b):
    return (
        set(a.blocks) == set(b.blocks)
        and a.pivot_seq == b.pivot_seq
        and all(np.array_equal(a.blocks[k], b.blocks[k]) for k in a.blocks)
    )


@pytest.fixture(scope="module")
def service_rows():
    rows = []
    for name in MATRICES:
        A = get_matrix(name, "small")
        rng = np.random.default_rng(0)
        cache = AnalysisCache()
        SStarSolver(analysis_cache=cache).factor(A)  # prime the cache

        t_cold = t_warm = t_analyze = 0.0
        for _ in range(REPEATS):
            Ai = _perturbed(A, rng)
            t0 = time.perf_counter()
            cold = SStarSolver().factor(Ai)
            t_cold += time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = SStarSolver(analysis_cache=cache).refactor(Ai)
            t_warm += time.perf_counter() - t0
            assert warm.report.analysis_reused
            assert _bitwise_equal(cold.factorization.matrix,
                                  warm.factorization.matrix)
        t_cold /= REPEATS
        t_warm /= REPEATS
        # the whole cold-vs-warm gap is analyze work the cache skipped
        t_analyze = t_cold - t_warm

        solver = SStarSolver(analysis_cache=cache).refactor(A)
        B = rng.uniform(-1.0, 1.0, (A.nrows, NRHS))
        t0 = time.perf_counter()
        for j in range(NRHS):
            solver.solve(B[:, j])
        t_seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        X = solver.solve(B)
        t_blk = time.perf_counter() - t0
        assert X.shape == (A.nrows, NRHS)

        rows.append({
            "matrix": name,
            "n": A.nrows,
            "nnz": A.nnz,
            "cold_factor_s": t_cold,
            "warm_refactor_s": t_warm,
            "analyze_s": t_analyze,
            "amortization": t_cold / t_warm,
            "nrhs": NRHS,
            "seq_solves_s": t_seq,
            "block_solve_s": t_blk,
            "multirhs_speedup": t_seq / t_blk,
        })
    return rows


def test_service_throughput_report(service_rows):
    header = ["matrix", "n", "cold (s)", "warm (s)", "amort",
              f"{NRHS} solves (s)", "block (s)", "mRHS"]
    rows = [
        (
            r["matrix"], r["n"], f"{r['cold_factor_s']:.4g}",
            f"{r['warm_refactor_s']:.4g}", f"{r['amortization']:.1f}x",
            f"{r['seq_solves_s']:.4g}", f"{r['block_solve_s']:.4g}",
            f"{r['multirhs_speedup']:.1f}x",
        )
        for r in service_rows
    ]
    print_table("Serving layer: refactor amortization and multi-RHS batching",
                header, rows)
    save_results("service_throughput", service_rows)

    for r in service_rows:
        # acceptance: cached refactor amortizes the analyze phase >= 3x
        # end-to-end, and a block solve beats k sequential solves
        assert r["amortization"] >= 3.0, (
            f"{r['matrix']}: amortization {r['amortization']:.2f}x < 3x"
        )
        assert r["analyze_s"] > 0.0
        assert r["multirhs_speedup"] > 1.0, (
            f"{r['matrix']}: block solve no faster than "
            f"{r['nrhs']} sequential solves"
        )


def test_bench_warm_refactor(benchmark):
    A = get_matrix("sherman5", "small")
    cache = AnalysisCache()
    SStarSolver(analysis_cache=cache).factor(A)
    rng = np.random.default_rng(1)
    Ai = _perturbed(A, rng)

    def run():
        return SStarSolver(analysis_cache=cache).refactor(Ai)

    solver = benchmark.pedantic(run, rounds=2, iterations=1)
    assert solver.report.analysis_reused
