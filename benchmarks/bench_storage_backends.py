"""Backend comparison — padded dense blocks vs packed supernode panels.

Not a paper table, but the design choice behind it is the paper's: S*
stores supernode panels densely over *structural* rows and Theorem-1 dense
subcolumns.  The padded-block backend trades memory for simplicity; this
bench quantifies the memory gap, checks pivot-sequence identity, and times
both on real wall clock.
"""

import numpy as np
import pytest

from conftest import print_table, save_results
from repro.numfact import packed_factor, sstar_factor

MATRICES = ["sherman5", "orsreg1", "goodwin", "jpwh991", "vavasis3"]


@pytest.fixture(scope="module")
def backend_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        dense = sstar_factor(ctx.ordered.A, sym=ctx.sym, part=ctx.part)
        packed = packed_factor(ctx.ordered.A, sym=ctx.sym, part=ctx.part)
        dense_bytes = sum(b.nbytes for b in dense.matrix.blocks.values())
        packed_bytes = packed.storage_bytes()
        b = np.ones(ctx.ordered.n)
        agree = bool(
            np.allclose(dense.solve(b), packed.solve(b), rtol=1e-8, atol=1e-11)
        )
        rows.append({
            "matrix": name,
            "dense_kib": dense_bytes / 1024,
            "packed_kib": packed_bytes / 1024,
            "saving": 1.0 - packed_bytes / dense_bytes,
            "pivots_equal": dense.matrix.pivot_seq == packed.matrix.pivot_seq,
            "solutions_agree": agree,
        })
    return rows


def test_backend_report(backend_rows):
    header = ["matrix", "dense KiB", "packed KiB", "saving", "pivots ==", "x agree"]
    rows = [
        (r["matrix"], f"{r['dense_kib']:.0f}", f"{r['packed_kib']:.0f}",
         f"{r['saving']:.1%}", r["pivots_equal"], r["solutions_agree"])
        for r in backend_rows
    ]
    print_table("Storage backends: dense blocks vs packed panels", header, rows)
    save_results("storage_backends", backend_rows)

    for r in backend_rows:
        assert r["pivots_equal"], r["matrix"]
        assert r["solutions_agree"], r["matrix"]
        assert r["saving"] > 0.0, r["matrix"]


def test_bench_packed_factorization(benchmark, ctx_cache):
    ctx = ctx_cache("sherman5")

    def run():
        return packed_factor(ctx.ordered.A, sym=ctx.sym, part=ctx.part)

    lu = benchmark(run)
    assert lu.counter.total > 0


def test_bench_threads_backend(benchmark, ctx_cache):
    """Wall-clock the shared-memory thread backend (real parallelism when
    the host BLAS releases the GIL; small matrices mostly measure overhead,
    so no speedup assertion here)."""
    from repro.parallel import sstar_factor_threads

    ctx = ctx_cache("sherman5")

    def run():
        return sstar_factor_threads(
            ctx.ordered.A, nthreads=4, sym=ctx.sym, part=ctx.part
        )

    lu = benchmark(run)
    assert lu.counter.total > 0
