"""Table 4 — parallel-time improvement from supernode amalgamation.

Paper: ``1 - PT_amalgamated / PT_exact`` for the 1D RAPID code, P = 1..32;
improvements of 10-55% because bigger supernodes mean bigger dense blocks
and coarser tasks.
"""

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.parallel import run_1d
from repro.taskgraph import build_task_graph

MATRICES = ["sherman5", "lnsp3937", "lns3937", "sherman3", "jpwh991", "orsreg1", "saylr4"]
PROCS = [1, 2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def table4_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)          # amalgamation factor 4
        ctx0 = ctx_cache(name, 0)      # exact supernodes
        tg_a = ctx.taskgraph
        tg_0 = build_task_graph(ctx0.bstruct)
        from repro.supernodes import supernode_stats

        st = supernode_stats(ctx.sym)
        row = {"matrix": name,
               "blocks_exact": ctx0.part.N, "blocks_amalgamated": ctx.part.N,
               "mean_supernode_width": round(st["mean_width"], 2)}
        for p in PROCS:
            ta = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E,
                        method="rapid", tg=tg_a).parallel_seconds
            t0 = run_1d(ctx0.ordered.A, ctx0.part, ctx0.bstruct, p, T3E,
                        method="rapid", tg=tg_0).parallel_seconds
            row[f"P{p}"] = 1.0 - ta / t0
        rows.append(row)
    return rows


def test_table4_report(table4_rows):
    header = ["matrix", "N exact", "N amalg"] + [f"P={p}" for p in PROCS]
    rows = [
        tuple(
            [r["matrix"], r["blocks_exact"], r["blocks_amalgamated"]]
            + [f"{r[f'P{p}']:+.1%}" for p in PROCS]
        )
        for r in table4_rows
    ]
    print_table("Table 4: parallel-time improvement from amalgamation", header, rows)
    save_results("table4", table4_rows)

    for r in table4_rows:
        # amalgamation must coarsen the partition...
        assert r["blocks_amalgamated"] <= r["blocks_exact"], r["matrix"]
        # ...of supernodes that start out narrow (the paper's ~1.5-2 regime)
        assert r["mean_supernode_width"] < 4.0, r["matrix"]
    # ...and on average improve the parallel time
    means = {p: sum(r[f"P{p}"] for r in table4_rows) / len(table4_rows) for p in PROCS}
    assert means[8] > 0.0
    assert means[16] > 0.0


def test_bench_amalgamation(benchmark, ctx_cache):
    from repro.supernodes import find_supernodes
    from repro.supernodes.amalgamate import amalgamate_supernodes

    ctx = ctx_cache("saylr4")
    exact = find_supernodes(ctx.sym, max_size=25)

    def run():
        return amalgamate_supernodes(ctx.sym, exact, factor=4, max_size=25)

    bounds = benchmark(run)
    assert len(bounds) <= len(exact)
