"""Fault-tolerance overhead — acks, retransmissions and checkpoints.

Not a paper table: this quantifies what the resilience layer costs in
simulated (virtual) time on the paper's test matrices.  Three overheads
are measured against the fault-free 1D CA baseline:

* **ack** — reliable delivery on a fault-free network (pure protocol cost:
  every send blocks on its acknowledgement);
* **retry** — reliable delivery under an 8% message-drop plan (ack cost
  plus retransmission backoff), which must still produce a bit-identical
  factorization;
* **ckpt** — checkpoint/restart rounds with no faults (the cost of cutting
  the pipeline at panel boundaries), also bit-identical.

Rows land in ``benchmarks/results/BENCH_fault_overhead.json``.
"""

import numpy as np
import pytest

from conftest import print_table, save_results
from repro.machine import T3E, FaultPlan
from repro.parallel import run_1d, run_1d_resilient

MATRICES = ["sherman5", "lnsp3937", "orsreg1"]
NPROCS = 8
DROP_PLAN = FaultPlan.drops(0.08, seed=42)
CKPT_INTERVAL = 4


def _bitwise_equal(a, b):
    return (
        set(a.blocks) == set(b.blocks)
        and a.pivot_seq == b.pivot_seq
        and all(np.array_equal(a.blocks[k], b.blocks[k]) for k in a.blocks)
    )


@pytest.fixture(scope="module")
def overhead_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        args = (ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E)
        base = run_1d(*args, method="ca")
        t0 = base.sim.total_time

        acked = run_1d(*args, method="ca", sim_opts={"reliable": True})
        retry = run_1d(*args, method="ca",
                       sim_opts={"faults": DROP_PLAN, "reliable": True})
        ckpt = run_1d_resilient(*args, method="ca",
                                ckpt_interval=CKPT_INTERVAL, reliable=None)

        assert _bitwise_equal(base.factor, acked.factor)
        assert _bitwise_equal(base.factor, retry.factor)
        assert _bitwise_equal(base.factor, ckpt.factor)

        rows.append({
            "matrix": name,
            "n": ctx.ordered.A.nrows,
            "baseline_s": t0,
            "ack_overhead": acked.sim.total_time / t0 - 1.0,
            "retry_overhead": retry.sim.total_time / t0 - 1.0,
            "ckpt_overhead": ckpt.total_time / t0 - 1.0,
            "retransmits": retry.sim.fault_stats.retransmits,
            "dropped": retry.sim.fault_stats.dropped,
            "rounds": len(ckpt.rounds),
        })
    return rows


def test_fault_overhead_report(overhead_rows):
    header = ["matrix", "n", "base (s)", "ack", "retry", "ckpt",
              "drops", "resends", "rounds"]
    rows = [
        (
            r["matrix"], r["n"], f"{r['baseline_s']:.4g}",
            f"{r['ack_overhead']:+.1%}", f"{r['retry_overhead']:+.1%}",
            f"{r['ckpt_overhead']:+.1%}", r["dropped"], r["retransmits"],
            r["rounds"],
        )
        for r in overhead_rows
    ]
    print_table("Fault-tolerance virtual-time overhead (1D CA, P=8)",
                header, rows)
    save_results("fault_overhead", overhead_rows)

    for r in overhead_rows:
        # protocol costs are real but bounded: acks alone stay cheap, and
        # an 8% drop rate costs at least as much as acks alone
        assert 0.0 < r["ack_overhead"]
        assert r["retry_overhead"] >= r["ack_overhead"] - 1e-12
        assert r["dropped"] >= 1 and r["retransmits"] >= 1
        # checkpoint rounds only re-cut the pipeline; no work is redone
        assert r["rounds"] >= 2
        assert -0.05 < r["ckpt_overhead"]


def test_bench_reliable_run(benchmark, ctx_cache):
    ctx = ctx_cache("orsreg1")

    def run():
        return run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E,
                      method="ca",
                      sim_opts={"faults": DROP_PLAN, "reliable": True})

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.sim.fault_stats.retransmits >= 0
