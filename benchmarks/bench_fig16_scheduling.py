"""Fig. 16 — impact of scheduling strategy on the 1D code.

Paper: ``1 - PT_RAPID / PT_CA`` per matrix and processor count.  For 2-4
processors CA occasionally edges ahead; from 8 processors up the RAPID code
runs 10-40% faster, and the gap widens with P.
"""

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.parallel import run_1d

MATRICES = ["sherman5", "lnsp3937", "lns3937", "jpwh991", "orsreg1", "goodwin"]
PROCS = [2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def fig16_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        row = {"matrix": name}
        for p in PROCS:
            tra = run_1d(
                ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E,
                method="rapid", tg=ctx.taskgraph,
            ).parallel_seconds
            tca = run_1d(
                ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E,
                method="ca", tg=ctx.taskgraph,
            ).parallel_seconds
            row[f"P{p}"] = 1.0 - tra / tca
        rows.append(row)
    return rows


def test_fig16_report(fig16_rows):
    header = ["matrix"] + [f"P={p}" for p in PROCS]
    rows = [
        tuple([r["matrix"]] + [f"{r[f'P{p}']:+.1%}" for p in PROCS])
        for r in fig16_rows
    ]
    print_table("Fig. 16: 1 - PT_RAPID/PT_CA (positive = RAPID faster)", header, rows)
    save_results("fig16", fig16_rows)

    # the paper's shape: RAPID clearly ahead for P >= 8 on most matrices
    wins8 = [r for r in fig16_rows if r["P8"] > 0]
    assert len(wins8) >= len(fig16_rows) - 1
    mean16 = sum(r["P16"] for r in fig16_rows) / len(fig16_rows)
    assert mean16 > 0.05  # ≥5% average improvement at 16 procs


def test_bench_ca_run(benchmark, ctx_cache):
    ctx = ctx_cache("sherman5")

    def run():
        return run_1d(
            ctx.ordered.A, ctx.part, ctx.bstruct, 8, T3E,
            method="ca", tg=ctx.taskgraph,
        )

    res = benchmark(run)
    assert res.parallel_seconds > 0
