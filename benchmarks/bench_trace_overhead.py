"""Tracing overhead — wall-clock cost of ``repro.obs`` instrumentation.

Not a paper table: this measures what span tracing costs in *host*
wall-clock time on the Table 3 workloads (1D RAPID factorization).  Three
timings per matrix, each the median of ``REPS`` runs:

* **off** — baseline, no tracer (every instrumentation site is a single
  ``is None`` test);
* **off2** — a second tracer-less pass, so the off-vs-off delta bounds the
  measurement jitter: tracing *disabled* must cost nothing beyond it;
* **on** — a live :class:`repro.obs.Tracer` collecting every span,
  message record and counter (target: < 15% over baseline).

Rows land in ``benchmarks/results/BENCH_trace_overhead.json``.
"""

import time

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.obs import Tracer
from repro.parallel import run_1d

MATRICES = ["sherman5", "lnsp3937", "orsreg1"]
NPROCS = 8
REPS = 3


def _median_seconds(fn) -> float:
    times = []
    for _ in range(REPS):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


@pytest.fixture(scope="module")
def overhead_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        args = (ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, T3E)

        def run(sim_opts=None):
            return run_1d(*args, method="rapid", sim_opts=sim_opts)

        run()  # warm caches before timing
        t_off = _median_seconds(run)
        t_off2 = _median_seconds(run)

        tracers = []

        def run_traced():
            tr = Tracer()
            tracers.append(tr)
            return run(sim_opts={"tracer": tr})

        t_on = _median_seconds(run_traced)
        nspans = len(tracers[-1].spans)

        rows.append({
            "matrix": name,
            "n": ctx.ordered.A.nrows,
            "off_s": t_off,
            "jitter": t_off2 / t_off - 1.0,
            "on_s": t_on,
            "on_overhead": t_on / t_off - 1.0,
            "spans": nspans,
            "messages": len(tracers[-1].messages),
        })
    return rows


def test_trace_overhead_report(overhead_rows):
    header = ["matrix", "n", "off (s)", "jitter", "on (s)", "overhead",
              "spans", "msgs"]
    rows = [
        (
            r["matrix"], r["n"], f"{r['off_s']:.4g}",
            f"{r['jitter']:+.1%}", f"{r['on_s']:.4g}",
            f"{r['on_overhead']:+.1%}", r["spans"], r["messages"],
        )
        for r in overhead_rows
    ]
    print_table("Tracing overhead (wall clock, 1D RAPID)", header, rows)
    save_results("trace_overhead", overhead_rows)

    for r in overhead_rows:
        # Loose CI-safe bounds; the JSON records the actual numbers.  The
        # design target is < 15% enabled and ~0% disabled — enforced here
        # only up to scheduler noise on shared runners.
        assert r["on_overhead"] < 0.50, (
            f"{r['matrix']}: tracing overhead {r['on_overhead']:+.1%}")
        assert r["spans"] > 0 and r["messages"] > 0
