"""Ablation — network-parameter sensitivity of the parallel codes.

The paper stresses low-overhead RMA (shmem_put: 2.7 us, 126 MB/s on T3D) as
an enabler: "low communication overhead is critical for sparse code with
mixed granularities".  We sweep latency and bandwidth around the T3E
calibration and measure how the 1D RAPID and 2D async codes respond — the
fine-grained 2D pivot reductions should hurt more under high latency.
"""

import dataclasses

import pytest

from conftest import print_table, save_results
from repro.machine import T3E
from repro.parallel import run_1d, run_2d

LATENCIES = [0.5e-6, 1e-6, 5e-6, 25e-6]
NPROCS = 8


@pytest.fixture(scope="module")
def network_rows(ctx_cache):
    ctx = ctx_cache("sherman5")
    rows = []
    for lat in LATENCIES:
        spec = dataclasses.replace(T3E, name=f"T3E-lat{lat*1e6:g}us", latency_s=lat)
        t1 = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, spec,
                    method="rapid", tg=ctx.taskgraph).parallel_seconds
        t2 = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, spec).parallel_seconds
        rows.append({
            "latency_us": lat * 1e6,
            "t_1d": t1,
            "t_2d": t2,
            "ratio_2d_over_1d": t2 / t1,
        })
    return rows


def test_network_ablation_report(network_rows):
    header = ["latency (us)", "1D RAPID (ms)", "2D async (ms)", "2D/1D"]
    rows = [
        (f"{r['latency_us']:g}", f"{r['t_1d']*1e3:.3f}", f"{r['t_2d']*1e3:.3f}",
         f"{r['ratio_2d_over_1d']:.2f}")
        for r in network_rows
    ]
    print_table(f"Ablation: message latency at P={NPROCS} (sherman5)", header, rows)
    save_results("ablation_network", network_rows)

    # both codes slow down monotonically with latency...
    t1 = [r["t_1d"] for r in network_rows]
    t2 = [r["t_2d"] for r in network_rows]
    assert all(a <= b * 1.001 for a, b in zip(t1, t1[1:]))
    assert all(a <= b * 1.001 for a, b in zip(t2, t2[1:]))
    # ...and the fine-grained 2D code degrades at least as fast as 1D
    assert network_rows[-1]["ratio_2d_over_1d"] >= network_rows[0]["ratio_2d_over_1d"] * 0.9


def test_bench_high_latency_run(benchmark, ctx_cache):
    ctx = ctx_cache("sherman5")
    spec = dataclasses.replace(T3E, latency_s=25e-6)

    def run():
        return run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, NPROCS, spec)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.parallel_seconds > 0
