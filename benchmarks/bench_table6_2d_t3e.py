"""Table 6 — 2D asynchronous code on T3E, the headline result.

Paper: P = 8..128; up to 6.878 GFLOPS on 128 nodes (vavasis3) — the highest
performance reported for distributed-memory sparse LU with partial pivoting
at the time.  T3E runs ~3.1-3.4x the T3D megaflops on 64 nodes.
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import achieved_mflops
from repro.machine import T3D, T3E
from repro.parallel import run_2d

MATRICES = ["goodwin", "e40r0100", "ex11", "raefsky4", "inaccura", "af23560", "vavasis3"]
PROCS = [8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def table6_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        row = {"matrix": name}
        for p in PROCS:
            res = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E)
            row[f"P{p}_s"] = res.parallel_seconds
            row[f"P{p}_mflops"] = achieved_mflops(
                ctx.superlu_flops, res.parallel_seconds
            )
        res64_t3d = run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, 64, T3D)
        row["t3e_vs_t3d_64"] = res64_t3d.parallel_seconds / row["P64_s"]
        rows.append(row)
    return rows


def test_table6_report(table6_rows):
    header = ["matrix"] + [f"P={p} MF" for p in PROCS] + ["T3E/T3D @64"]
    rows = [
        tuple(
            [r["matrix"]]
            + [f"{r[f'P{p}_mflops']:.1f}" for p in PROCS]
            + [f"{r['t3e_vs_t3d_64']:.2f}x"]
        )
        for r in table6_rows
    ]
    print_table("Table 6: 2D asynchronous code on T3E", header, rows)
    save_results("table6", table6_rows)

    from conftest import SCALE

    for r in table6_rows:
        # the machine upgrade must deliver a clear speedup at 64 nodes
        assert r["t3e_vs_t3d_64"] > 1.5, r["matrix"]
        # larger grids must not collapse; monotone scaling needs
        # bench-scale matrices (see Table 5 note)
        limit = 1.5 if SCALE == "bench" else 4.0
        assert r["P128_s"] < r["P8_s"] * limit, r["matrix"]
    # the biggest matrix should post the best absolute number at P=128
    best = max(table6_rows, key=lambda r: r["P128_mflops"])
    assert best["P128_mflops"] == max(r["P128_mflops"] for r in table6_rows)


def test_bench_2d_t3e(benchmark, ctx_cache):
    ctx = ctx_cache("vavasis3")

    def run():
        return run_2d(ctx.ordered.A, ctx.part, ctx.bstruct, 16, T3E)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.parallel_seconds > 0
