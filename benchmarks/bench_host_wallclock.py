"""Host wall-clock — legacy vs optimized host paths on the tier-1 workloads.

Not a paper table: this measures what the host-performance work is worth in
*real* seconds, with the simulated machine held fixed.  Every workload runs
twice per repetition, interleaved:

* **legacy** — ``sim_opts={"scheduler": "poll", "zero_copy": False}`` plus
  ``batched_updates(False)``: round-robin polling, deep-copied message
  payloads, per-block supernode updates;
* **optimized** — the defaults: event-driven scheduling, lint-certified
  zero-copy delivery, batched update sweeps.

Both modes must agree *bitwise* — identical factors/solutions and identical
virtual times — so the ``identical`` column doubles as a semantics check.
Wall-clock is the min over ``REPS`` paired repetitions (host timing is
noisy; minima compare steady states).

Rows land in ``benchmarks/results/BENCH_host_wallclock.json``.

CLI gate mode (used by the CI perf-smoke job)::

    PYTHONPATH=src python benchmarks/bench_host_wallclock.py --quick

re-measures a small case subset and fails (exit 1) if any speedup ratio
drops below ``GATE_TOLERANCE`` x the committed row — ratios, not absolute
times, so the gate is machine-speed invariant.
"""

import argparse
import hashlib
import sys
import time

import json
from pathlib import Path

import numpy as np
import pytest

from conftest import _build_context, print_table, save_results
from repro.machine import T3E, CrashFault, FaultPlan
from repro.numfact import LUFactorization
from repro.numfact.tasks import batched_updates
from repro.parallel import run_1d, run_1d_trisolve, run_2d, run_2d_trisolve
from repro.parallel.resilience import run_1d_resilient

MATRICES = ["sherman5", "goodwin"]
P_1D = 32
P_2D = 64
REPS = 3
LEGACY_OPTS = {"scheduler": "poll", "zero_copy": False}
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_host_wallclock.json"

# --quick gate: machine-invariant ratio check on a fast case subset
QUICK_CASES = [("sherman5", "1d-ca"), ("sherman5", "2d-async")]
GATE_TOLERANCE = 0.75  # fail below 75% of the committed speedup (>25% regress)


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


def _fp(*parts) -> str:
    h = hashlib.blake2b(digest_size=16)
    for p in parts:
        h.update(p if isinstance(p, bytes) else repr(p).encode())
    return h.hexdigest()


def _factor_fp(factor, sim) -> str:
    return _fp(
        *(factor.blocks[k].tobytes() for k in sorted(factor.blocks)),
        factor.pivot_seq,
        sim.total_time,
        sim.rank_clocks,
        sim.messages,
    )


def _prepare(ctx) -> dict:
    """Shared inputs per matrix: the factor the trisolves consume, plus the
    fault plans.  Also warms every structural memo (task graph, schedules,
    sweep tables) so timings measure the per-run host path, not one-time
    derivations both modes share."""
    A, part, bstruct = ctx.ordered.A, ctx.part, ctx.bstruct
    r1 = run_1d(A, part, bstruct, P_1D, T3E, method="rapid", tg=ctx.taskgraph)
    lu = LUFactorization(r1.factor, ctx.sym, ctx.part, ctx.bstruct,
                         r1.sim.total_counter())
    probe = run_1d(A, part, bstruct, P_1D, T3E, method="ca", tg=ctx.taskgraph)
    return {
        "A": A, "part": part, "bstruct": bstruct, "tg": ctx.taskgraph,
        "lu": lu, "owner_1d": r1.schedule.owner, "b": np.ones(ctx.ordered.n),
        "crash_plan": FaultPlan(crashes=[CrashFault(2, probe.sim.total_time * 0.4)]),
        "drop_plan": FaultPlan.drops(0.05, seed=11),
    }


def _case_1d(method):
    def run(p, opts):
        r = run_1d(p["A"], p["part"], p["bstruct"], P_1D, T3E,
                   method=method, tg=p["tg"], sim_opts=opts)
        return _factor_fp(r.factor, r.sim)
    return run


def _case_2d(synchronous):
    def run(p, opts):
        r = run_2d(p["A"], p["part"], p["bstruct"], P_2D, T3E,
                   synchronous=synchronous, sim_opts=opts)
        return _factor_fp(r.factor, r.sim)
    return run


def _case_tri1d(p, opts):
    r = run_1d_trisolve(p["lu"], p["owner_1d"], p["b"], P_1D, T3E, sim_opts=opts)
    return _fp(r.x.tobytes(), r.sim.total_time, r.sim.rank_clocks)


def _case_tri2d(p, opts):
    r = run_2d_trisolve(p["lu"], p["b"], P_2D, T3E, sim_opts=opts)
    return _fp(r.x.tobytes(), r.sim.total_time, r.sim.rank_clocks)


def _case_resilient(p, opts):
    r = run_1d_resilient(p["A"], p["part"], p["bstruct"], P_1D, T3E,
                         method="ca", ckpt_interval=3, faults=p["crash_plan"],
                         reliable=True, sim_opts=opts)
    return _fp(
        *(r.factor.blocks[k].tobytes() for k in sorted(r.factor.blocks)),
        r.factor.pivot_seq, r.total_time, r.crashes,
    )


def _case_chaos(p, opts):
    # chaos-smoke analogue: lossy network + ack/retry reliable delivery
    opts = dict(opts or {})
    opts.update(faults=p["drop_plan"], reliable=True)
    r = run_1d(p["A"], p["part"], p["bstruct"], P_1D, T3E,
               method="ca", tg=p["tg"], sim_opts=opts)
    return _factor_fp(r.factor, r.sim)


CASES = {
    "1d-rapid": _case_1d("rapid"),
    "1d-ca": _case_1d("ca"),
    "2d-sync": _case_2d(True),
    "2d-async": _case_2d(False),
    "tri-1d": _case_tri1d,
    "tri-2d": _case_tri2d,
    "resilient": _case_resilient,
    "chaos-smoke": _case_chaos,
}


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


def _run_mode(case_fn, prep, mode) -> str:
    if mode == "legacy":
        with batched_updates(False):
            return case_fn(prep, dict(LEGACY_OPTS))
    return case_fn(prep, None)


def _measure(matrix: str, case: str, prep: dict, reps: int = REPS) -> dict:
    case_fn = CASES[case]
    fps = {m: _run_mode(case_fn, prep, m) for m in ("legacy", "optimized")}
    times = {"legacy": [], "optimized": []}
    for _ in range(reps):  # interleave modes so drift hits both equally
        for mode in ("legacy", "optimized"):
            t0 = time.perf_counter()
            _run_mode(case_fn, prep, mode)
            times[mode].append(time.perf_counter() - t0)
    legacy_s, opt_s = min(times["legacy"]), min(times["optimized"])
    return {
        "matrix": matrix,
        "case": case,
        "legacy_ms": legacy_s * 1e3,
        "optimized_ms": opt_s * 1e3,
        "speedup": legacy_s / opt_s,
        "identical": fps["legacy"] == fps["optimized"],
    }


# ---------------------------------------------------------------------------
# full bench (pytest)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def wallclock_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        prep = _prepare(ctx_cache(name))
        for case in CASES:
            rows.append(_measure(name, case, prep))
    return rows


def test_host_wallclock_report(wallclock_rows):
    header = ["matrix", "case", "legacy (ms)", "optimized (ms)", "speedup",
              "identical"]
    rows = [
        (r["matrix"], r["case"], f"{r['legacy_ms']:.1f}",
         f"{r['optimized_ms']:.1f}", f"{r['speedup']:.2f}x",
         "yes" if r["identical"] else "NO")
        for r in wallclock_rows
    ]
    print_table("Host wall-clock: legacy vs optimized", header, rows)
    save_results("host_wallclock", wallclock_rows)

    # semantics first: a fast wrong answer is a bug, not a speedup
    for r in wallclock_rows:
        assert r["identical"], f"{r['matrix']}/{r['case']}: modes diverged"
    # the optimized path must win in aggregate; individual small cases can
    # graze 1.0 on a noisy runner, so gate the geometric mean loosely here
    # (the committed JSON + the --quick CI gate carry the real numbers)
    logs = [np.log(r["speedup"]) for r in wallclock_rows]
    geomean = float(np.exp(np.mean(logs)))
    assert geomean > 1.1, f"geomean speedup {geomean:.2f}x"


# ---------------------------------------------------------------------------
# --quick CI gate
# ---------------------------------------------------------------------------


def _quick_gate() -> int:
    doc = json.loads(RESULTS_PATH.read_text())
    committed = {(r["matrix"], r["case"]): r for r in doc["rows"]}
    failures = []
    rows = []
    for matrix, case in QUICK_CASES:
        prep = _prepare(_build_context(matrix))
        row = _measure(matrix, case, prep)
        ref = committed[(matrix, case)]
        floor = GATE_TOLERANCE * ref["speedup"]
        rows.append((matrix, case, f"{row['speedup']:.2f}x",
                     f"{ref['speedup']:.2f}x", f"{floor:.2f}x",
                     "yes" if row["identical"] else "NO"))
        if not row["identical"]:
            failures.append(f"{matrix}/{case}: legacy and optimized diverged")
        if row["speedup"] < floor:
            failures.append(
                f"{matrix}/{case}: speedup {row['speedup']:.2f}x fell below "
                f"{floor:.2f}x (75% of committed {ref['speedup']:.2f}x)")
    print_table("perf-smoke: current vs committed speedup",
                ["matrix", "case", "current", "committed", "floor", "identical"],
                rows)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("perf-smoke: OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="regression gate against the committed JSON")
    args = ap.parse_args(argv)
    if args.quick:
        return _quick_gate()
    rc = pytest.main(["-q", "-p", "no:cacheprovider", __file__])
    return int(rc)


if __name__ == "__main__":
    sys.exit(main())
