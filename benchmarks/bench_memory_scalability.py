"""Memory scalability — why only the 2D code ran the big matrices.

Paper: "1D codes cannot solve the last six matrices of Table 6 due to
memory constraint" (the Table 5/6 dashes), while the 2D per-processor
footprint is ``S1/p + O(buffers)`` with the Theorem 2 buffer total below
``2.5 * BSIZE / n`` of S1.  We compute both mappings' peak per-node
footprints across machine sizes and find the smallest node memory that
each mapping needs — the 2D requirement must shrink with P while the 1D
one stalls near a constant fraction of S1.
"""

import pytest

from conftest import print_table, save_results
from repro.analysis import footprint_1d, footprint_2d, sequential_storage_bytes
from repro.machine import T3E
from repro.parallel import Grid2D, run_1d

MATRICES = ["goodwin", "vavasis3"]
PROCS = [4, 16, 64]


@pytest.fixture(scope="module")
def memory_rows(ctx_cache):
    rows = []
    for name in MATRICES:
        ctx = ctx_cache(name)
        s1 = sequential_storage_bytes(ctx.bstruct)
        row = {"matrix": name, "s1_kib": s1 / 1024}
        for p in PROCS:
            res = run_1d(ctx.ordered.A, ctx.part, ctx.bstruct, p, T3E,
                         method="rapid", tg=ctx.taskgraph)
            f1 = footprint_1d(ctx.bstruct, res.schedule.owner,
                              res.buffer_high_water)
            f2 = footprint_2d(ctx.bstruct, Grid2D.preferred(p))
            row[f"P{p}_1d_frac"] = f1.fraction_of_s1
            row[f"P{p}_2d_frac"] = f2.fraction_of_s1
            row[f"P{p}_1d_data"] = f1.data_peak / s1
            row[f"P{p}_2d_data"] = f2.data_peak / s1
            row[f"P{p}_2d_buf"] = f2.buffer_peak / s1
        rows.append(row)
    return rows


def test_memory_report(memory_rows):
    header = ["matrix", "S1 (KiB)"] + [
        h for p in PROCS for h in (f"1D@{p} (xS1)", f"2D@{p} (xS1)")
    ]
    rows = [
        tuple(
            [r["matrix"], f"{r['s1_kib']:.0f}"]
            + [
                v
                for p in PROCS
                for v in (f"{r[f'P{p}_1d_frac']:.3f}", f"{r[f'P{p}_2d_frac']:.3f}")
            ]
        )
        for r in memory_rows
    ]
    print_table("Memory: peak per-node footprint / S1", header, rows)
    save_results("memory_scalability", memory_rows)

    for r in memory_rows:
        # the 2D *data* share keeps shrinking with P and at scale sits
        # clearly below the 1D peak (the "1D cannot solve the big matrices"
        # effect); the Theorem 2 buffer provisioning is only asymptotically
        # negligible (~2.5 BSIZE/n of S1), so it is reported separately
        assert r["P64_2d_data"] < r["P4_2d_data"]
        assert r["P64_2d_data"] < r["P64_1d_frac"]
        assert r["P64_2d_buf"] < 1.0


def test_bench_footprint_computation(benchmark, ctx_cache):
    ctx = ctx_cache("goodwin")
    g = Grid2D.preferred(16)
    f = benchmark(footprint_2d, ctx.bstruct, g)
    assert f.peak > 0
